"""Reservation admission under concurrency: tenants never over-commit.

The acceptance bar for the durable ledger: N workers — threads in one
process, then genuinely separate OS processes — hammering one shared store
with reserve/consume cycles must stop at **exactly** ``floor(budget /
epsilon)`` total releases for a linear tenant.  Not approximately: one
release too many is a privacy violation, one too few means admission
leaked budget (reservations not returned).  Both the JSON-file and SQLite
backends are hammered; the cross-process runs use inline ``-c`` programs
against the same store path, exactly like a fleet of service processes
sharing a ledger."""

from __future__ import annotations

import json
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.exceptions import BudgetExhaustedError
from repro.service.ledger import TenantLedger
from repro.service.stores import JSONFileLedgerStore, SQLiteLedgerStore

SRC = str(Path(__file__).resolve().parent.parent / "src")

BUDGET = 6.0
EPSILON = 0.5
CAP = int(BUDGET / EPSILON)  # 12 releases, total — however many workers race

N_WORKERS = 6
CHUNK = 2  # releases per reservation attempt


def _make_store(kind: str, tmp_path: Path):
    if kind == "json":
        return JSONFileLedgerStore(tmp_path / "ledgers.json")
    return SQLiteLedgerStore(tmp_path / "ledgers.sqlite")


def _drain_worker(store, results: list, index: int) -> None:
    """Reserve-consume-release until admission refuses; count consumptions.

    Each worker mimics one service session loop: reserve a small chunk,
    consume it fully, repeat.  The refusal path returns any unconsumed
    remainder, so the *total* across workers must land exactly on CAP.
    """
    ledger = TenantLedger(store, "acme")
    served = 0
    try:
        while True:
            try:
                reservation = ledger.reserve(CHUNK, EPSILON)
            except BudgetExhaustedError:
                break
            try:
                for _ in range(CHUNK):
                    ledger.consume(reservation.reservation_id, epsilon=EPSILON)
                    served += 1
            finally:
                ledger.release_unused(reservation.reservation_id)
        results[index] = served
    except BaseException as error:  # pragma: no cover - regression only
        results[index] = error


@pytest.mark.parametrize("kind", ["json", "sqlite"])
def test_threads_stop_at_exact_budget(kind, tmp_path):
    store = _make_store(kind, tmp_path)
    try:
        TenantLedger(store, "acme").create(budget=BUDGET)
        results: list = [None] * N_WORKERS
        threads = [
            threading.Thread(target=_drain_worker, args=(store, results, i))
            for i in range(N_WORKERS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        failures = [r for r in results if not isinstance(r, int)]
        assert not failures, failures
        assert sum(results) == CAP
        snapshot = TenantLedger(store, "acme").snapshot()
        assert snapshot["spent_epsilon"] == pytest.approx(BUDGET)
        assert snapshot["reserved_releases"] == 0  # everything returned
    finally:
        store.close()


#: One OS process's worker loop: drain the shared ledger, print the count.
_SUBPROCESS_DRAINER = """
import json, sys
from repro.exceptions import BudgetExhaustedError
from repro.service.ledger import TenantLedger
from repro.service.stores import ledger_store_from_path

path, epsilon, chunk = sys.argv[1], float(sys.argv[2]), int(sys.argv[3])
store = ledger_store_from_path(path)
ledger = TenantLedger(store, "acme")
served = 0
while True:
    try:
        reservation = ledger.reserve(chunk, epsilon)
    except BudgetExhaustedError:
        break
    try:
        for _ in range(chunk):
            ledger.consume(reservation.reservation_id, epsilon=epsilon)
            served += 1
    finally:
        ledger.release_unused(reservation.reservation_id)
store.close()
print(json.dumps({"served": served}))
"""


@pytest.mark.parametrize("kind", ["json", "sqlite"])
def test_processes_stop_at_exact_budget(kind, tmp_path):
    """The same exactness across OS processes — the store file (JSON with
    its lock sidecar, SQLite with BEGIN IMMEDIATE) is the only
    coordination, exactly as for a fleet of service processes."""
    store = _make_store(kind, tmp_path)
    path = str(store.path)
    TenantLedger(store, "acme").create(budget=BUDGET)
    store.close()

    procs = [
        subprocess.Popen(
            [sys.executable, "-c", _SUBPROCESS_DRAINER, path, str(EPSILON), str(CHUNK)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
            text=True,
        )
        for _ in range(4)
    ]
    served = []
    for proc in procs:
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, err
        served.append(json.loads(out)["served"])

    assert sum(served) == CAP
    reopened = _make_store(kind, tmp_path)
    try:
        snapshot = TenantLedger(reopened, "acme").snapshot()
        assert snapshot["spent_epsilon"] == pytest.approx(BUDGET)
        assert snapshot["reserved_releases"] == 0
        assert snapshot["n_releases"] == CAP
    finally:
        reopened.close()


def test_concurrent_tenants_are_independent(tmp_path):
    """Two tenants drained concurrently each hit their own cap — budgets
    never bleed across tenant rows."""
    store = SQLiteLedgerStore(tmp_path / "ledgers.sqlite")
    try:
        for tenant in ("a", "b"):
            TenantLedger(store, tenant).create(budget=2.0)

        results: list[tuple[str, int]] = []
        results_lock = threading.Lock()

        def drain(tenant: str) -> None:
            ledger = TenantLedger(store, tenant)
            served = 0
            while True:
                try:
                    res = ledger.reserve(1, EPSILON)
                except BudgetExhaustedError:
                    break
                ledger.consume(res.reservation_id, epsilon=EPSILON)
                served += 1
            with results_lock:
                results.append((tenant, served))

        threads = [
            threading.Thread(target=drain, args=(t,))
            for t in ("a", "b", "a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        totals = {"a": 0, "b": 0}
        for tenant, served in results:
            totals[tenant] += served
        assert totals == {"a": 4, "b": 4}  # floor(2.0 / 0.5) each
    finally:
        store.close()
