"""Unit tests for analysis metrics, the trial runner, and reporting."""

import numpy as np
import pytest

from repro.analysis.metrics import expected_l1_laplace, l1_error
from repro.analysis.reporting import Table, format_series
from repro.analysis.runner import run_release_trials, run_sampled_trials
from repro.baselines.group_dp import GroupDPMechanism
from repro.core.queries import StateFrequencyQuery
from repro.data.datasets import TimeSeriesDataset
from repro.exceptions import ValidationError


class TestMetrics:
    def test_l1_scalar(self):
        assert l1_error(1.5, 1.0) == pytest.approx(0.5)

    def test_l1_vector(self):
        assert l1_error(np.array([1.0, 0.0]), np.array([0.0, 2.0])) == pytest.approx(3.0)

    def test_l1_shape_mismatch(self):
        with pytest.raises(ValidationError):
            l1_error(np.zeros(2), np.zeros(3))

    def test_expected_l1(self):
        assert expected_l1_laplace(0.5, 4) == pytest.approx(2.0)

    def test_expected_l1_validation(self):
        with pytest.raises(ValidationError):
            expected_l1_laplace(-1.0)
        with pytest.raises(ValidationError):
            expected_l1_laplace(1.0, 0)


class TestRunner:
    def test_mean_error_matches_expectation(self):
        data = TimeSeriesDataset.from_sequence(np.zeros(100, dtype=int), 2)
        mech = GroupDPMechanism(1.0)
        query = StateFrequencyQuery(0, 100)
        result = run_release_trials(mech, data, query, n_trials=30_000, rng=0)
        # GroupDP scale = 1.0 here; E|Lap(1)| = 1.
        assert result.mean_l1 == pytest.approx(1.0, rel=0.05)
        assert result.noise_scale == pytest.approx(1.0)
        assert result.n_trials == 30_000

    def test_rejects_zero_trials(self):
        data = TimeSeriesDataset.from_sequence(np.zeros(10, dtype=int), 2)
        with pytest.raises(ValidationError):
            run_release_trials(GroupDPMechanism(1.0), data, StateFrequencyQuery(0, 10), 0)

    def test_sampled_trials(self):
        from repro.data.synthetic import sample_binary_dataset
        from repro.distributions.chain_family import IntervalChainFamily

        family = IntervalChainFamily(0.3)
        result = run_sampled_trials(
            make_data=lambda gen: sample_binary_dataset(family, 50, gen),
            make_mechanism=lambda: GroupDPMechanism(1.0),
            make_query=lambda data: StateFrequencyQuery(1, data.n_observations),
            n_trials=50,
            rng=0,
        )
        assert result.n_trials == 50
        assert result.mean_l1 > 0


class TestReporting:
    def test_table_rendering(self):
        table = Table("Demo", ["mech", "a", "b"])
        table.add_row("MQM", [0.5, None])
        rendered = table.render()
        assert "Demo" in rendered
        assert "N/A" in rendered
        assert "0.5" in rendered

    def test_table_row_length_checked(self):
        table = Table("Demo", ["mech", "a"])
        with pytest.raises(ValidationError):
            table.add_row("MQM", [1, 2])

    def test_table_to_dict(self):
        table = Table("Demo", ["mech", "x"])
        table.add_row("GroupDP", [2.0])
        assert table.to_dict() == {"GroupDP": [2.0]}

    def test_format_series(self):
        text = format_series(
            "Fig", "alpha", [0.1, 0.2], {"MQM": [1.0, 0.5], "GK16": [None, 0.1]}
        )
        assert "alpha" in text
        assert "N/A" in text

    def test_format_series_length_checked(self):
        with pytest.raises(ValidationError):
            format_series("Fig", "x", [1], {"m": [1, 2]})

    def test_infinity_rendering(self):
        table = Table("Demo", ["mech", "x"])
        table.add_row("m", [float("inf")])
        assert "inf" in table.render()

    def test_scientific_rendering(self):
        table = Table("Demo", ["mech", "x"])
        table.add_row("m", [1.23e-7])
        assert "e-07" in table.render()
