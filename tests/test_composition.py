"""Unit tests for Theorem 4.4 composition accounting."""

import pytest

from repro.core.composition import CompositionAccountant, compose_epsilons
from repro.exceptions import BudgetExhaustedError, PrivacyParameterError


class TestComposeEpsilons:
    def test_empty_is_zero(self):
        assert compose_epsilons([]) == 0.0

    def test_equal_levels_sum(self):
        assert compose_epsilons([0.5, 0.5, 0.5]) == pytest.approx(1.5)

    def test_unequal_levels_use_max(self):
        """K releases at levels eps_k guarantee K * max_k eps_k."""
        assert compose_epsilons([0.1, 0.5, 0.2]) == pytest.approx(1.5)

    def test_rejects_non_positive(self):
        with pytest.raises(PrivacyParameterError):
            compose_epsilons([0.5, 0.0])


class TestAccountant:
    def test_total_accumulates(self):
        acc = CompositionAccountant()
        acc.record(0.5, quilt_signature="sig")
        acc.record(0.5, quilt_signature="sig")
        assert acc.total_epsilon() == pytest.approx(1.0)
        assert len(acc) == 2

    def test_mixed_levels(self):
        acc = CompositionAccountant()
        acc.record(0.2, quilt_signature="sig")
        acc.record(1.0, quilt_signature="sig")
        assert acc.total_epsilon() == pytest.approx(2.0)

    def test_different_quilts_rejected(self):
        acc = CompositionAccountant()
        acc.record(0.5, quilt_signature="sig-a")
        with pytest.raises(PrivacyParameterError):
            acc.record(0.5, quilt_signature="sig-b")
        assert acc.is_composable  # the offending record was not kept

    def test_budget_enforced(self):
        acc = CompositionAccountant(budget=1.0)
        acc.record(0.5, quilt_signature="s")
        acc.record(0.5, quilt_signature="s")
        with pytest.raises(PrivacyParameterError):
            acc.record(0.5, quilt_signature="s")
        assert acc.remaining() == pytest.approx(0.0)

    def test_budget_accounts_for_max_rule(self):
        """Recording a bigger epsilon retroactively scales earlier releases."""
        acc = CompositionAccountant(budget=2.0)
        acc.record(0.1, quilt_signature="s")
        acc.record(0.1, quilt_signature="s")
        with pytest.raises(PrivacyParameterError):
            acc.record(1.0, quilt_signature="s")  # would cost 3 * 1.0

    def test_remaining_none_without_budget(self):
        assert CompositionAccountant().remaining() is None

    def test_rejects_bad_epsilon(self):
        with pytest.raises(PrivacyParameterError):
            CompositionAccountant().record(-1.0)

    def test_empty_total(self):
        assert CompositionAccountant().total_epsilon() == 0.0

    def test_aggregates_only_mode_enforces_without_a_trail(self):
        """audit_trail=False: same budget enforcement, O(1) memory — the
        mode for indefinite streaming sessions whose per-yield debits would
        otherwise grow ``records`` forever."""
        acc = CompositionAccountant(budget=3.0, audit_trail=False)
        for _ in range(3):
            acc.record(1.0, quilt_signature="s")
        assert acc.records == []  # no trail kept
        assert len(acc) == 3
        assert acc.total_epsilon() == pytest.approx(3.0)
        assert acc.remaining() == pytest.approx(0.0)
        with pytest.raises(BudgetExhaustedError) as excinfo:
            acc.record(1.0, quilt_signature="s")
        assert excinfo.value.spent == pytest.approx(3.0)
        assert len(acc) == 3

    def test_aggregates_only_mode_still_checks_signatures(self):
        acc = CompositionAccountant(audit_trail=False)
        acc.record(1.0, quilt_signature="a")
        with pytest.raises(PrivacyParameterError):
            acc.record(1.0, quilt_signature="b")


class TestMechanismIntegration:
    def test_mqm_signature_drives_accounting(self):
        """Two MQM instances over the same network share a quilt signature."""
        import numpy as np

        from repro.core.markov_quilt import MarkovQuiltMechanism
        from repro.distributions.bayesnet import DiscreteBayesianNetwork

        net = DiscreteBayesianNetwork.chain(
            np.array([0.6, 0.4]), np.array([[0.8, 0.2], [0.3, 0.7]]), 4
        )
        m1 = MarkovQuiltMechanism([net], epsilon=1.0)
        m2 = MarkovQuiltMechanism([net], epsilon=1.0)
        acc = CompositionAccountant()
        acc.record(m1.epsilon, quilt_signature=m1.quilt_signature())
        acc.record(m2.epsilon, quilt_signature=m2.quilt_signature())
        assert acc.total_epsilon() == pytest.approx(2.0)
