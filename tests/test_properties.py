"""Property-based tests (hypothesis) for core invariants.

Each property is one the paper's correctness story leans on: metric axioms
of W-infinity, soundness of the mixing bound (approx >= exact), Theorem 3.3
(Wasserstein <= group sensitivity), and structural Markov-chain facts.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.framework import entrywise_instantiation
from repro.core.models import FluCliqueModel, MarkovChainModel
from repro.core.mqm_chain import MQMApprox, MQMExact, chain_max_influence
from repro.core.queries import CountQuery, StateFrequencyQuery
from repro.core.wasserstein import group_sensitivity, wasserstein_bound
from repro.distributions.chain_family import FiniteChainFamily
from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.markov import MarkovChain
from repro.distributions.metrics import (
    kl_divergence,
    max_divergence,
    total_variation,
    w_infinity,
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
probs = st.integers(min_value=1, max_value=20)


@st.composite
def discrete_distributions(draw, max_atoms=6):
    n = draw(st.integers(min_value=1, max_value=max_atoms))
    atoms = sorted(
        draw(
            st.lists(
                st.integers(min_value=-30, max_value=30),
                min_size=n,
                max_size=n,
                unique=True,
            )
        )
    )
    weights = [draw(probs) for _ in range(n)]
    total = sum(weights)
    return DiscreteDistribution(
        np.array(atoms, dtype=float), np.array(weights, dtype=float) / total
    )


@st.composite
def binary_chains(draw, stationary_start=True):
    p0 = draw(st.floats(min_value=0.1, max_value=0.9))
    p1 = draw(st.floats(min_value=0.1, max_value=0.9))
    chain = MarkovChain([0.5, 0.5], [[p0, 1 - p0], [1 - p1, p1]])
    return chain.with_stationary_initial() if stationary_start else chain


@st.composite
def small_chains(draw, k_max=3):
    k = draw(st.integers(min_value=2, max_value=k_max))
    rows = []
    for _ in range(k):
        weights = [draw(probs) for _ in range(k)]
        rows.append(np.asarray(weights, dtype=float) / sum(weights))
    initial = np.asarray([draw(probs) for _ in range(k)], dtype=float)
    return MarkovChain(initial / initial.sum(), np.vstack(rows))


# ----------------------------------------------------------------------
# W-infinity metric axioms
# ----------------------------------------------------------------------
class TestWInfinityProperties:
    @settings(max_examples=60, deadline=None)
    @given(discrete_distributions())
    def test_identity(self, mu):
        assert w_infinity(mu, mu) == pytest.approx(0.0, abs=1e-12)

    @settings(max_examples=60, deadline=None)
    @given(discrete_distributions(), discrete_distributions())
    def test_symmetry(self, mu, nu):
        assert w_infinity(mu, nu) == pytest.approx(w_infinity(nu, mu), abs=1e-10)

    @settings(max_examples=40, deadline=None)
    @given(discrete_distributions(), discrete_distributions(), discrete_distributions())
    def test_triangle_inequality(self, a, b, c):
        assert w_infinity(a, c) <= w_infinity(a, b) + w_infinity(b, c) + 1e-9

    @settings(max_examples=60, deadline=None)
    @given(discrete_distributions(), st.floats(min_value=-5, max_value=5))
    def test_shift_law(self, mu, c):
        assert w_infinity(mu, mu.shift(c)) == pytest.approx(abs(c), abs=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(discrete_distributions(), discrete_distributions())
    def test_bounded_by_support_range(self, mu, nu):
        lo = min(mu.atoms.min(), nu.atoms.min())
        hi = max(mu.atoms.max(), nu.atoms.max())
        assert w_infinity(mu, nu) <= hi - lo + 1e-9

    @settings(max_examples=60, deadline=None)
    @given(discrete_distributions(), discrete_distributions())
    def test_dominates_mean_difference(self, mu, nu):
        assert w_infinity(mu, nu) >= abs(mu.mean() - nu.mean()) - 1e-9


class TestDivergenceProperties:
    @settings(max_examples=60, deadline=None)
    @given(discrete_distributions(), discrete_distributions())
    def test_max_divergence_dominates_kl(self, p, q):
        assert max_divergence(p, q) >= kl_divergence(p, q) - 1e-9

    @settings(max_examples=60, deadline=None)
    @given(discrete_distributions())
    def test_self_divergences_vanish(self, p):
        assert max_divergence(p, p) == pytest.approx(0.0, abs=1e-12)
        assert total_variation(p, p) == 0.0

    @settings(max_examples=60, deadline=None)
    @given(discrete_distributions(), discrete_distributions())
    def test_tv_bounds(self, p, q):
        tv = total_variation(p, q)
        assert 0.0 <= tv <= 1.0


# ----------------------------------------------------------------------
# Markov chain structure
# ----------------------------------------------------------------------
class TestMarkovChainProperties:
    @settings(max_examples=40, deadline=None)
    @given(small_chains())
    def test_stationary_is_fixed_point(self, chain):
        pi = chain.stationary()
        np.testing.assert_allclose(pi @ chain.transition, pi, atol=1e-8)
        assert pi.min() >= 0
        np.testing.assert_allclose(pi.sum(), 1.0)

    @settings(max_examples=40, deadline=None)
    @given(small_chains(), st.integers(min_value=0, max_value=6))
    def test_powers_are_stochastic(self, chain, n):
        power = chain.power(n)
        np.testing.assert_allclose(power.sum(axis=1), np.ones(chain.n_states), atol=1e-9)
        assert power.min() >= -1e-12

    @settings(max_examples=40, deadline=None)
    @given(small_chains())
    def test_time_reversal_preserves_stationary(self, chain):
        np.testing.assert_allclose(
            chain.time_reversal().stationary(), chain.stationary(), atol=1e-7
        )

    @settings(max_examples=40, deadline=None)
    @given(small_chains())
    def test_eigengap_range(self, chain):
        assert 0.0 <= chain.eigengap() <= 2.0 + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(binary_chains(), st.integers(min_value=0, max_value=10))
    def test_marginals_converge_to_stationary(self, chain, t):
        # Stationary-started chains stay stationary at every t.
        np.testing.assert_allclose(chain.marginal(t), chain.stationary(), atol=1e-8)


# ----------------------------------------------------------------------
# Mechanism dominance invariants
# ----------------------------------------------------------------------
class TestMechanismProperties:
    @settings(max_examples=20, deadline=None)
    @given(binary_chains(), st.integers(min_value=2, max_value=8))
    def test_influence_nonnegative(self, chain, ab):
        assert chain_max_influence(chain, 20, ab, ab) >= 0.0

    @settings(max_examples=15, deadline=None)
    @given(binary_chains(), st.floats(min_value=0.3, max_value=4.0))
    def test_approx_dominates_exact(self, chain, epsilon):
        """Lemma 4.8 is an upper bound, so MQMApprox can never add less
        noise than MQMExact on the same singleton family."""
        family = FiniteChainFamily([chain])
        T = 200
        exact = MQMExact(family, epsilon, max_window=60).sigma_max(T)
        approx = MQMApprox(family, epsilon).sigma_max(T)
        assert approx >= exact - 1e-9

    @settings(max_examples=15, deadline=None)
    @given(binary_chains(stationary_start=False), st.floats(min_value=0.5, max_value=3.0))
    def test_exact_never_worse_than_group_dp(self, chain, epsilon):
        """The trivial quilt gives sigma <= T/eps, i.e. GroupDP noise."""
        T = 50
        sigma = MQMExact(FiniteChainFamily([chain]), epsilon, max_window=25).sigma_max(T)
        assert sigma <= T / epsilon + 1e-9

    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=2, max_value=4),
        st.lists(probs, min_size=3, max_size=5),
    )
    def test_theorem_3_3_wasserstein_vs_group(self, size, weights):
        """W <= group-DP sensitivity for random single-clique flu models."""
        weights = weights[: size + 1]
        if len(weights) < size + 1:
            weights = weights + [1] * (size + 1 - len(weights))
        dist = np.asarray(weights, dtype=float) / sum(weights)
        model = FluCliqueModel([size], [dist])
        inst = entrywise_instantiation(size, 2, [model])
        w = wasserstein_bound(inst, CountQuery())
        sens = group_sensitivity(CountQuery(), 2, size, [list(range(size))])
        assert w <= sens + 1e-9

    @settings(max_examples=10, deadline=None)
    @given(binary_chains(stationary_start=False))
    def test_wasserstein_bounded_by_query_range(self, chain):
        """W can never exceed the diameter of the query's output range
        (any coupling moves mass at most that far), which for the frequency
        query equals L * T = 1."""
        length = 4
        inst = entrywise_instantiation(length, 2, [MarkovChainModel(chain, length)])
        query = StateFrequencyQuery(1, length)
        w = wasserstein_bound(inst, query)
        assert 0.0 <= w <= query.lipschitz * length + 1e-9
