"""Unit tests for Laplace primitives and the mechanism base class."""

import numpy as np
import pytest

from repro.core.laplace import Mechanism, PrivateRelease, laplace_density, sample_laplace
from repro.core.queries import RelativeFrequencyHistogram, StateFrequencyQuery
from repro.exceptions import PrivacyParameterError


class FixedScaleMechanism(Mechanism):
    """Test double with a constant noise scale."""

    name = "Fixed"

    def __init__(self, epsilon, scale):
        super().__init__(epsilon)
        self._scale = scale

    def noise_scale(self, query, data):
        return self._scale


class TestSampleLaplace:
    def test_zero_scale_is_exact(self):
        assert sample_laplace(0.0) == 0.0
        np.testing.assert_array_equal(sample_laplace(0.0, 5), np.zeros(5))

    def test_rejects_negative_scale(self):
        with pytest.raises(PrivacyParameterError):
            sample_laplace(-1.0)

    def test_mean_absolute_value_matches_scale(self):
        samples = sample_laplace(2.0, 200_000, rng=0)
        assert np.abs(samples).mean() == pytest.approx(2.0, rel=0.02)

    def test_deterministic_with_seed(self):
        np.testing.assert_array_equal(sample_laplace(1.0, 4, rng=9), sample_laplace(1.0, 4, rng=9))


class TestLaplaceDensity:
    def test_peak_at_center(self):
        assert laplace_density(3.0, 3.0, 2.0) == pytest.approx(1.0 / 4.0)

    def test_symmetry(self):
        assert laplace_density(1.0, 0.0, 1.0) == pytest.approx(laplace_density(-1.0, 0.0, 1.0))

    def test_integrates_to_one(self):
        xs = np.linspace(-40, 40, 200_001)
        density = laplace_density(xs, 0.0, 1.5)
        assert np.trapezoid(density, xs) == pytest.approx(1.0, abs=1e-4)

    def test_rejects_zero_scale(self):
        with pytest.raises(PrivacyParameterError):
            laplace_density(0.0, 0.0, 0.0)


class TestMechanismBase:
    def test_rejects_non_positive_epsilon(self):
        with pytest.raises(PrivacyParameterError):
            FixedScaleMechanism(0.0, 1.0)

    def test_scalar_release(self):
        mech = FixedScaleMechanism(1.0, 0.5)
        data = np.array([1, 0, 1, 1])
        release = mech.release(data, StateFrequencyQuery(1, 4), rng=0)
        assert isinstance(release.value, float)
        assert release.true_value == pytest.approx(0.75)
        assert release.noise_scale == 0.5
        assert release.mechanism == "Fixed"

    def test_vector_release_shape(self):
        mech = FixedScaleMechanism(1.0, 0.1)
        data = np.array([0, 1, 2, 2])
        release = mech.release(data, RelativeFrequencyHistogram(3, 4), rng=0)
        assert np.asarray(release.value).shape == (3,)

    def test_zero_scale_release_is_exact(self):
        mech = FixedScaleMechanism(1.0, 0.0)
        data = np.array([1, 1, 0, 0])
        release = mech.release(data, StateFrequencyQuery(1, 4), rng=0)
        assert release.value == release.true_value

    def test_release_determinism(self):
        mech = FixedScaleMechanism(1.0, 1.0)
        data = np.array([1, 0])
        a = mech.release(data, StateFrequencyQuery(1, 2), rng=42)
        b = mech.release(data, StateFrequencyQuery(1, 2), rng=42)
        assert a.value == b.value


class TestPrivateRelease:
    def test_l1_error_scalar(self):
        release = PrivateRelease(1.5, 1.0, 0.1, 1.0, "m")
        assert release.l1_error() == pytest.approx(0.5)

    def test_l1_error_vector(self):
        release = PrivateRelease(np.array([1.0, 2.0]), np.array([0.0, 0.0]), 0.1, 1.0, "m")
        assert release.l1_error() == pytest.approx(3.0)
