"""Regression tests for multi-component (disconnected) Bayesian networks.

The seed's ``is_path_graph`` checked only the degree multiset, so a
disconnected union of paths (e.g. two 2-node chains) passed as a "path" and
``chain_quilts`` then crashed with ``IndexError`` inside ``_path_order``.
The structured scenario library builds exactly such graphs (independent
household blocks), so every layer that touches them is pinned here:
routing (``is_path_graph``/``chain_quilts``), quilt generation
(``distance_quilts``/``quilt_from_set``), the max-influence kernel, the
inference engine, and end-to-end Algorithm 2 calibration.
"""

import numpy as np
import pytest

from repro.core.markov_quilt import MarkovQuiltMechanism, max_influence
from repro.core.queries import CountQuery
from repro.distributions.bayesnet import DiscreteBayesianNetwork
from repro.exceptions import ValidationError
from repro.inference import engine_for

INITIAL = np.array([0.7, 0.3])
TRANSITION = np.array([[0.85, 0.15], [0.3, 0.7]])


def union_of_paths(*lengths: int) -> DiscreteBayesianNetwork:
    """Disjoint chains ``c{i}_0 -> c{i}_1 -> ...`` with no cross edges."""
    net = DiscreteBayesianNetwork()
    for i, length in enumerate(lengths):
        net.add_node(f"c{i}_0", 2, cpd=INITIAL)
        for j in range(1, length):
            net.add_node(f"c{i}_{j}", 2, parents=[f"c{i}_{j-1}"], cpd=TRANSITION)
    return net


def path_plus_cycle() -> DiscreteBayesianNetwork:
    """A 3-node path next to a 3-node cycle: n-1 edges, two endpoints,
    degrees <= 2 — everything the degree profile checks — yet not a path."""
    net = DiscreteBayesianNetwork()
    net.add_node("p0", 2, cpd=INITIAL)
    net.add_node("p1", 2, parents=["p0"], cpd=TRANSITION)
    net.add_node("p2", 2, parents=["p1"], cpd=TRANSITION)
    net.add_node("a", 2, cpd=INITIAL)
    net.add_node("b", 2, parents=["a"], cpd=TRANSITION)
    cpd = np.stack([np.stack([INITIAL, INITIAL]), np.stack([INITIAL, INITIAL[::-1]])])
    net.add_node("c", 2, parents=["a", "b"], cpd=cpd)
    return net


# ----------------------------------------------------------------------
# Routing: is_path_graph / chain_quilts
# ----------------------------------------------------------------------
class TestPathRouting:
    def test_union_of_two_2chains_is_not_a_path(self):
        """The confirmed bug: degrees [1, 1, 1, 1] passed the seed check."""
        assert not union_of_paths(2, 2).is_path_graph()

    @pytest.mark.parametrize("lengths", [(2, 2), (3, 2), (4, 4, 4), (1, 5)])
    def test_path_unions_are_never_paths(self, lengths):
        assert not union_of_paths(*lengths).is_path_graph()

    def test_path_plus_cycle_is_not_a_path(self):
        net = path_plus_cycle()
        degrees = sorted(len(net.undirected_neighbors(n)) for n in net.nodes)
        assert degrees == [1, 1, 2, 2, 2, 2]  # the profile a path shows
        assert not net.is_path_graph()

    def test_single_paths_still_accepted(self):
        assert union_of_paths(1).is_path_graph()
        assert union_of_paths(2).is_path_graph()
        assert DiscreteBayesianNetwork.chain(INITIAL, TRANSITION, 7).is_path_graph()

    def test_chain_quilts_raises_validation_error_not_index_error(self):
        """The documented error instead of the seed's IndexError crash."""
        net = union_of_paths(2, 2)
        with pytest.raises(ValidationError, match="connected path-graph"):
            net.chain_quilts("c0_0")

    def test_chain_quilts_rejects_every_union_node(self):
        net = union_of_paths(3, 4)
        for node in net.nodes:
            with pytest.raises(ValidationError):
                net.chain_quilts(node)


# ----------------------------------------------------------------------
# Quilt generation with unreachable components
# ----------------------------------------------------------------------
class TestDisconnectedQuilts:
    def test_distance_quilts_skip_infinite_radii(self):
        net = union_of_paths(3, 3)
        quilts = net.distance_quilts("c0_0")
        assert quilts[0].is_trivial
        # Finite radii only: the c1 component is unreachable from c0_0.
        assert all(not q.quilt & {"c1_0", "c1_1", "c1_2"} for q in quilts)
        # Unreachable nodes land in remote for every non-trivial candidate.
        for quilt in quilts[1:]:
            assert {"c1_0", "c1_1", "c1_2"} <= quilt.remote

    def test_quilt_from_set_empty_separator_isolates_component(self):
        net = union_of_paths(3, 2)
        quilt = net.quilt_from_set("c0_1", ())
        assert quilt is not None and not quilt.is_trivial
        assert quilt.quilt == frozenset()
        assert quilt.nearby == {"c0_0", "c0_1", "c0_2"}
        assert quilt.remote == {"c1_0", "c1_1"}

    def test_max_influence_zero_across_components(self):
        """An empty separator between independent components carries no
        influence; a within-component separator's influence matches the
        same computation on the isolated component."""
        net = union_of_paths(3, 2)
        free = net.quilt_from_set("c0_1", ())
        assert max_influence([net], free) == 0.0
        joined = net.quilt_from_set("c0_1", {"c0_2"})
        alone = DiscreteBayesianNetwork.chain(INITIAL, TRANSITION, 3)
        isolated = alone.quilt_from_set("X2", {"X3"})
        assert max_influence([net], joined) == pytest.approx(
            max_influence([alone], isolated), abs=1e-12
        )

    def test_cross_component_separator_has_zero_influence(self):
        """Quilt nodes in a different component are independent of the
        protected node, so they add nothing to the influence."""
        net = union_of_paths(2, 2)
        cross = net.quilt_from_set("c0_0", {"c1_0"})
        assert cross is not None
        assert max_influence([net], cross) == 0.0


# ----------------------------------------------------------------------
# Inference engine on disconnected networks
# ----------------------------------------------------------------------
class TestDisconnectedInference:
    def test_engine_marginals_match_oracle(self):
        net = union_of_paths(3, 2)
        engine = engine_for(net)
        assignments, probs = net.enumerate_joint()
        for position, node in enumerate(net.nodes):
            expected = np.zeros(2)
            for assignment, prob in zip(assignments, probs):
                expected[assignment[position]] += prob
            np.testing.assert_allclose(engine.marginal_of(node), expected, rtol=1e-12)

    def test_engine_conditionals_across_components(self):
        """Conditioning on one component says nothing about the other."""
        net = union_of_paths(2, 2)
        engine = engine_for(net)
        tensor = engine.conditional_tables(("c1_1",), "c0_0")
        np.testing.assert_allclose(tensor[0], tensor[1], rtol=1e-12)
        np.testing.assert_allclose(tensor[0], engine.marginal_of("c1_1"), rtol=1e-12)

    def test_engine_calibrates_disconnected_network(self):
        """End-to-end: Algorithm 2 on a disconnected network, serial and
        through the cached-calibration release path, without error."""
        net = union_of_paths(3, 2)
        mechanism = MarkovQuiltMechanism([net], epsilon=2.0)
        sigma = mechanism.sigma_max()
        assert np.isfinite(sigma) and sigma > 0
        release = mechanism.release(
            np.zeros(len(net.nodes), dtype=int), CountQuery(), rng=0
        )
        assert np.isfinite(release.value)

    def test_disconnected_sigma_never_exceeds_single_component_bound(self):
        """Protecting a node needs at most its own component nearby, so a
        generator exploiting disconnection beats the trivial bound."""
        from repro.distributions.structured import household_blocks_scenario

        scenario = household_blocks_scenario(3, 3)
        mechanism = MarkovQuiltMechanism(
            [scenario.reference], epsilon=2.0,
            quilt_generator=scenario.quilt_generator,
        )
        # 9 nodes total, 3 per block: the disconnection dividend caps sigma
        # at block_size/epsilon even when every in-block cut is inadmissible.
        assert mechanism.sigma_max() <= 3 / 2.0 + 1e-12
