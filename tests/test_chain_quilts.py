"""Tests for the Lemma 4.6 quilt sets on path-graph Bayesian networks, and
the resulting parity between Algorithm 2 and Algorithm 3."""

import numpy as np
import pytest

from repro.core.markov_quilt import MarkovQuiltMechanism
from repro.core.mqm_chain import MQMExact
from repro.distributions.bayesnet import DiscreteBayesianNetwork
from repro.distributions.chain_family import FiniteChainFamily
from repro.distributions.markov import MarkovChain
from repro.exceptions import ValidationError

INITIAL = np.array([0.7, 0.3])
TRANSITION = np.array([[0.85, 0.15], [0.3, 0.7]])


@pytest.fixture
def chain_net():
    return DiscreteBayesianNetwork.chain(INITIAL, TRANSITION, 6)


@pytest.fixture
def markov_chain():
    return MarkovChain(INITIAL, TRANSITION)


class TestPathDetection:
    def test_chain_is_path(self, chain_net):
        assert chain_net.is_path_graph()

    def test_single_node_is_path(self):
        net = DiscreteBayesianNetwork()
        net.add_node("A", 2, cpd=[0.5, 0.5])
        assert net.is_path_graph()

    def test_tree_is_not_path(self):
        net = DiscreteBayesianNetwork()
        net.add_node("r", 2, cpd=[0.5, 0.5])
        for child in ("a", "b", "c"):
            net.add_node(child, 2, parents=["r"], cpd=[[0.6, 0.4], [0.3, 0.7]])
        assert not net.is_path_graph()
        with pytest.raises(ValidationError):
            net.chain_quilts("r")


class TestChainQuilts:
    def test_count_matches_lemma_4_6(self, chain_net):
        """For node at position i (0-based) in a chain of length T the set
        has i left-only + (T-1-i) right-only + i*(T-1-i) two-sided + 1
        trivial quilts (unwindowed)."""
        quilts = chain_net.chain_quilts("X3")  # position 2, T = 6
        i, rest = 2, 3
        assert len(quilts) == 1 + i + rest + i * rest

    def test_quilts_are_valid_separators(self, chain_net):
        for quilt in chain_net.chain_quilts("X4"):
            if quilt.remote:
                assert chain_net.is_d_separated(quilt.node, quilt.remote, quilt.quilt)

    def test_two_sided_cardinality(self, chain_net):
        quilts = chain_net.chain_quilts("X3")
        two_sided = [q for q in quilts if len(q.quilt) == 2]
        for quilt in two_sided:
            members = sorted(int(n[1:]) for n in quilt.quilt)
            a = 3 - members[0]
            b = members[1] - 3
            assert quilt.card_nearby() == a + b - 1

    def test_window_limits_extent(self, chain_net):
        quilts = chain_net.chain_quilts("X3", max_window=1)
        # window 1: endpoints at distance 1 only — the one-sided neighbor
        # quilts plus the nearest two-sided quilt (card(X_N) = 1) + trivial.
        for quilt in quilts:
            if quilt.is_trivial:
                continue
            members = sorted(int(n[1:]) for n in quilt.quilt)
            assert all(abs(m - 3) == 1 for m in members)

    def test_endpoint_node_has_one_sided_only(self, chain_net):
        quilts = chain_net.chain_quilts("X1")
        assert all(q.is_trivial or len(q.quilt) == 1 for q in quilts)


class TestAlgorithm2Parity:
    def test_general_mechanism_matches_mqm_exact(self, chain_net, markov_chain):
        """With Lemma 4.6 quilt sets, Algorithm 2's sigma equals Algorithm 3's."""
        epsilon = 2.0
        quilt_sets = {node: chain_net.chain_quilts(node) for node in chain_net.nodes}
        general = MarkovQuiltMechanism([chain_net], epsilon=epsilon, quilt_sets=quilt_sets)
        exact = MQMExact(FiniteChainFamily([markov_chain]), epsilon, max_window=6)
        assert general.sigma_max() == pytest.approx(exact.sigma_max(6), rel=1e-9)

    def test_asymmetric_quilts_beat_symmetric(self, chain_net):
        """The richer Lemma 4.6 set can only lower sigma vs distance quilts."""
        epsilon = 2.0
        symmetric = MarkovQuiltMechanism([chain_net], epsilon=epsilon)
        asymmetric = MarkovQuiltMechanism(
            [chain_net],
            epsilon=epsilon,
            quilt_sets={n: chain_net.chain_quilts(n) for n in chain_net.nodes},
        )
        assert asymmetric.sigma_max() <= symmetric.sigma_max() + 1e-12
