"""Unit tests for the Wasserstein Mechanism (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.framework import Secret, SecretPair, entrywise_instantiation
from repro.core.models import FluCliqueModel, MarkovChainModel, TabularDataModel
from repro.core.queries import (
    CountQuery,
    MeanQuery,
    ScalarQuery,
    StateFrequencyQuery,
    SumQuery,
)
from repro.core.wasserstein import (
    ModelOutputTable,
    WassersteinMechanism,
    conditional_output_distribution,
    group_sensitivity,
    independence_groups,
    mixed_radix_assignments,
    model_supremum,
    wasserstein_bound,
)
from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.markov import MarkovChain
from repro.distributions.metrics import w_infinity, w_infinity_pooled
from repro.exceptions import EnumerationError, ValidationError


@pytest.fixture
def flu_instantiation():
    """Section 3.1 worked example: 4-person clique, symmetric count law."""
    model = FluCliqueModel([4], [[0.1, 0.15, 0.5, 0.15, 0.1]])
    return entrywise_instantiation(4, 2, [model])


class TestConditionalOutput:
    def test_matches_model_conditionals(self, flu_instantiation):
        model = flu_instantiation.models[0]
        dist = conditional_output_distribution(model, CountQuery(), Secret(0, 0))
        np.testing.assert_allclose(
            dist.probs_on(range(5)), [0.2, 0.225, 0.5, 0.075, 0.0], atol=1e-12
        )

    def test_zero_probability_secret_rejected(self):
        model = TabularDataModel([(0,)], [1.0])
        with pytest.raises(ValidationError):
            conditional_output_distribution(model, CountQuery(), Secret(0, 1))


class TestWassersteinBound:
    def test_flu_example_bound_is_two(self, flu_instantiation):
        """The paper computes W = 2 for the flu example."""
        assert wasserstein_bound(flu_instantiation, CountQuery()) == pytest.approx(2.0)

    def test_details_cover_admissible_pairs(self, flu_instantiation):
        bound, details = wasserstein_bound(
            flu_instantiation, CountQuery(), return_details=True
        )
        assert bound == pytest.approx(2.0)
        assert max(d.distance for d in details) == pytest.approx(2.0)
        # 4 records x 1 value pair x 1 theta.
        assert len(details) == 4

    def test_independent_records_reduce_to_sensitivity(self):
        """With independent records, Pufferfish = DP and W = query sensitivity."""
        outcomes = [(a, b) for a in range(2) for b in range(2)]
        probs = [0.25] * 4
        inst = entrywise_instantiation(2, 2, [TabularDataModel(outcomes, probs)])
        assert wasserstein_bound(inst, CountQuery()) == pytest.approx(1.0)

    def test_rejects_vector_queries(self, flu_instantiation):
        from repro.core.queries import RelativeFrequencyHistogram

        with pytest.raises(ValidationError):
            wasserstein_bound(flu_instantiation, RelativeFrequencyHistogram(2, 4))

    def test_multiple_thetas_take_supremum(self):
        weak = FluCliqueModel([2], [[0.4, 0.2, 0.4]])
        strong = FluCliqueModel([2], [[0.5, 0.0, 0.5]])  # perfectly correlated
        inst_weak = entrywise_instantiation(2, 2, [weak])
        inst_both = entrywise_instantiation(2, 2, [weak, strong])
        w_weak = wasserstein_bound(inst_weak, CountQuery())
        w_both = wasserstein_bound(inst_both, CountQuery())
        assert w_both >= w_weak
        assert w_both == pytest.approx(2.0)  # flipping one flips the other


class TestWassersteinMechanism:
    def test_noise_scale(self, flu_instantiation):
        mech = WassersteinMechanism(flu_instantiation, epsilon=2.0)
        scale = mech.noise_scale(CountQuery(), np.array([0, 1, 1, 0]))
        assert scale == pytest.approx(1.0)  # W=2 over epsilon=2

    def test_release_details(self, flu_instantiation):
        mech = WassersteinMechanism(flu_instantiation, epsilon=1.0)
        release = mech.release(np.array([0, 1, 1, 0]), CountQuery(), rng=0)
        assert release.details["wasserstein_bound"] == pytest.approx(2.0)
        assert release.mechanism == "Wasserstein"

    def test_bound_cached_per_query(self, flu_instantiation):
        mech = WassersteinMechanism(flu_instantiation, epsilon=1.0)
        query = CountQuery()
        first = mech.wasserstein_distance_bound(query)
        second = mech.wasserstein_distance_bound(query)
        assert first == second


class TestGroupSensitivity:
    def test_flu_group_sensitivity_is_four(self):
        """One clique of four: GroupDP sensitivity of the count is 4."""
        sens = group_sensitivity(CountQuery(), 2, 4, [[0, 1, 2, 3]])
        assert sens == pytest.approx(4.0)

    def test_theorem_3_3_flu(self, flu_instantiation):
        """W <= group sensitivity (Theorem 3.3): 2 <= 4 for the flu example."""
        w = wasserstein_bound(flu_instantiation, CountQuery())
        sens = group_sensitivity(CountQuery(), 2, 4, [[0, 1, 2, 3]])
        assert w <= sens

    def test_theorem_3_3_markov_chain(self):
        """W <= group sensitivity for a short chain (one fully-linked group)."""
        chain = MarkovChain([0.7, 0.3], [[0.8, 0.2], [0.3, 0.7]])
        model = MarkovChainModel(chain, 4)
        inst = entrywise_instantiation(4, 2, [model])
        query = StateFrequencyQuery(1, 4)
        w = wasserstein_bound(inst, query)
        sens = group_sensitivity(query, 2, 4, [[0, 1, 2, 3]])
        assert w <= sens + 1e-12

    def test_singleton_groups_match_entry_sensitivity(self):
        sens = group_sensitivity(CountQuery(), 2, 3, [[0], [1], [2]])
        assert sens == pytest.approx(1.0)


class TestIndependenceGroups:
    def test_independent_records_are_singletons(self):
        outcomes = [(a, b) for a in range(2) for b in range(2)]
        model = TabularDataModel(outcomes, [0.25] * 4)
        assert independence_groups([model]) == [[0], [1]]

    def test_clique_model_is_one_group(self):
        model = FluCliqueModel([3], [[0.2, 0.2, 0.2, 0.4]])
        assert independence_groups([model]) == [[0, 1, 2]]

    def test_two_cliques_are_two_groups(self):
        model = FluCliqueModel([2, 2], [[0.5, 0.0, 0.5], [0.5, 0.0, 0.5]])
        assert independence_groups([model]) == [[0, 1], [2, 3]]


class TestVectorizedKernels:
    """The tensorized Algorithm 1 substrate against the seed's per-secret
    generator walks, and the pooled W-infinity against the distribution
    objects — value parity to 1e-12."""

    def _legacy_conditional(self, model, query, secret):
        """The seed's conditional_output_distribution, verbatim."""
        pairs = []
        total = 0.0
        for row, prob in model.support():
            if row[secret.index] == secret.value:
                pairs.append((float(query(np.asarray(row))), prob))
                total += prob
        if total <= 0:
            raise ValidationError("zero probability")
        return DiscreteDistribution.from_pairs((v, p / total) for v, p in pairs)

    @pytest.mark.parametrize("length", [3, 5])
    def test_model_output_table_matches_legacy(self, length):
        chain = MarkovChain([0.6, 0.4], [[0.85, 0.15], [0.2, 0.8]])
        model = MarkovChainModel(chain, length)
        query = CountQuery()
        table = ModelOutputTable(model, query)
        for index in range(length):
            for value in range(2):
                secret = Secret(index, value)
                legacy = self._legacy_conditional(model, query, secret)
                mine = conditional_output_distribution(model, query, secret, table=table)
                np.testing.assert_allclose(mine.atoms, legacy.atoms, rtol=1e-12)
                np.testing.assert_allclose(mine.probs, legacy.probs, rtol=1e-12)

    def test_pooled_w_infinity_matches_distribution_form(self):
        rng = np.random.default_rng(5)
        for _ in range(50):
            n = int(rng.integers(2, 9))
            atoms = np.sort(rng.choice(np.arange(20.0), size=n, replace=False))
            wa = rng.random(n) * (rng.random(n) > 0.3)
            wb = rng.random(n) * (rng.random(n) > 0.3)
            if wa.sum() <= 0 or wb.sum() <= 0:
                continue
            wa, wb = wa / wa.sum(), wb / wb.sum()
            mu = DiscreteDistribution.from_pairs(zip(atoms, wa))
            nu = DiscreteDistribution.from_pairs(zip(atoms, wb))
            np.testing.assert_allclose(
                w_infinity_pooled(atoms, wa, wb), w_infinity(mu, nu), rtol=1e-12
            )

    def test_wasserstein_bound_matches_legacy_loop(self, flu_instantiation):
        """The full Algorithm 1 loop, reimplemented the seed's way."""
        query = CountQuery()
        supremum = 0.0
        for model in flu_instantiation.models:
            for pair in flu_instantiation.admissible_pairs(model):
                distance = w_infinity(
                    self._legacy_conditional(model, query, pair.left),
                    self._legacy_conditional(model, query, pair.right),
                )
                supremum = max(supremum, distance)
        np.testing.assert_allclose(
            wasserstein_bound(flu_instantiation, query), supremum, rtol=1e-12
        )

    def test_model_supremum_composes_to_bound(self, flu_instantiation):
        query = CountQuery()
        per_model = [
            model_supremum(flu_instantiation, query, theta_index)
            for theta_index in range(len(flu_instantiation.models))
        ]
        assert wasserstein_bound(flu_instantiation, query) == max(per_model)

    def test_table_rejects_vector_queries(self, flu_instantiation):
        from repro.core.queries import RelativeFrequencyHistogram

        with pytest.raises(ValidationError):
            ModelOutputTable(
                flu_instantiation.models[0], RelativeFrequencyHistogram(2, 4)
            )


class TestBatchEvaluation:
    """``Query.evaluate_batch`` must agree with the per-row loop exactly."""

    @pytest.mark.parametrize(
        "query",
        [
            CountQuery(),
            CountQuery(lambda x: x == 1),
            StateFrequencyQuery(1, 5),
            SumQuery(0.0, 2.0),
            MeanQuery(0.0, 2.0, 5),
            ScalarQuery(lambda x: float(np.sum(x % 2)), 1.0),
        ],
        ids=["count", "count-predicate", "state-freq", "sum", "mean", "scalar"],
    )
    def test_batch_matches_rowwise(self, query):
        rng = np.random.default_rng(11)
        rows = rng.integers(0, 3, size=(40, 5))
        batched = query.evaluate_batch(rows)
        rowwise = np.array([float(query(row)) for row in rows])
        np.testing.assert_array_equal(batched, rowwise)

    def test_vector_query_rejected(self):
        from repro.core.queries import RelativeFrequencyHistogram

        with pytest.raises(ValidationError):
            RelativeFrequencyHistogram(2, 4).evaluate_batch(np.zeros((3, 4), dtype=int))

    def test_wrong_row_width_rejected(self):
        with pytest.raises(ValidationError):
            StateFrequencyQuery(1, 5).evaluate_batch(np.zeros((3, 4), dtype=int))


class TestGroupSensitivityVectorized:
    """The mixed-radix + reduceat search against a brute-force reference."""

    def _legacy_group_sensitivity(self, query, n_values, n_records, groups):
        """The seed's per-group itertools.product walk, verbatim."""
        import itertools

        indices = list(range(n_records))
        sensitivity = 0.0
        for group in groups:
            group = sorted(set(group))
            complement = [i for i in indices if i not in group]
            extremes = {}
            for assignment in itertools.product(range(n_values), repeat=n_records):
                value = float(query(np.asarray(assignment)))
                key = tuple(assignment[i] for i in complement)
                low, high = extremes.get(key, (value, value))
                extremes[key] = (min(low, value), max(high, value))
            for low, high in extremes.values():
                sensitivity = max(sensitivity, high - low)
        return sensitivity

    def test_mixed_radix_assignments_order(self):
        import itertools

        assignments = mixed_radix_assignments(3, 4)
        expected = np.array(list(itertools.product(range(3), repeat=4)))
        np.testing.assert_array_equal(assignments, expected)

    @pytest.mark.parametrize(
        "query",
        [
            CountQuery(),
            SumQuery(0.0, 1.5),
            ScalarQuery(lambda x: float(np.max(x) - np.min(x)), 2.0),
        ],
        ids=["count", "sum", "scalar-range"],
    )
    @pytest.mark.parametrize(
        "groups",
        [[[0, 1, 2, 3]], [[0], [1], [2], [3]], [[0, 2], [1, 3]], [[1, 2, 3]]],
        ids=["one-group", "singletons", "interleaved", "partial"],
    )
    def test_matches_legacy(self, query, groups):
        vectorized = group_sensitivity(query, 3, 4, groups)
        legacy = self._legacy_group_sensitivity(query, 3, 4, groups)
        assert vectorized == pytest.approx(legacy, abs=1e-12)

    def test_group_covering_all_records(self):
        query = CountQuery()
        assert group_sensitivity(query, 2, 3, [[0, 1, 2]]) == pytest.approx(
            self._legacy_group_sensitivity(query, 2, 3, [[0, 1, 2]])
        )

    def test_enumeration_cap_still_enforced(self):
        with pytest.raises(EnumerationError):
            group_sensitivity(CountQuery(), 10, 10, [[0]], max_enumeration=1000)
