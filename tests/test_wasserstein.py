"""Unit tests for the Wasserstein Mechanism (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.framework import Secret, SecretPair, entrywise_instantiation
from repro.core.models import FluCliqueModel, MarkovChainModel, TabularDataModel
from repro.core.queries import CountQuery, StateFrequencyQuery
from repro.core.wasserstein import (
    WassersteinMechanism,
    conditional_output_distribution,
    group_sensitivity,
    independence_groups,
    wasserstein_bound,
)
from repro.distributions.markov import MarkovChain
from repro.exceptions import ValidationError


@pytest.fixture
def flu_instantiation():
    """Section 3.1 worked example: 4-person clique, symmetric count law."""
    model = FluCliqueModel([4], [[0.1, 0.15, 0.5, 0.15, 0.1]])
    return entrywise_instantiation(4, 2, [model])


class TestConditionalOutput:
    def test_matches_model_conditionals(self, flu_instantiation):
        model = flu_instantiation.models[0]
        dist = conditional_output_distribution(model, CountQuery(), Secret(0, 0))
        np.testing.assert_allclose(
            dist.probs_on(range(5)), [0.2, 0.225, 0.5, 0.075, 0.0], atol=1e-12
        )

    def test_zero_probability_secret_rejected(self):
        model = TabularDataModel([(0,)], [1.0])
        with pytest.raises(ValidationError):
            conditional_output_distribution(model, CountQuery(), Secret(0, 1))


class TestWassersteinBound:
    def test_flu_example_bound_is_two(self, flu_instantiation):
        """The paper computes W = 2 for the flu example."""
        assert wasserstein_bound(flu_instantiation, CountQuery()) == pytest.approx(2.0)

    def test_details_cover_admissible_pairs(self, flu_instantiation):
        bound, details = wasserstein_bound(
            flu_instantiation, CountQuery(), return_details=True
        )
        assert bound == pytest.approx(2.0)
        assert max(d.distance for d in details) == pytest.approx(2.0)
        # 4 records x 1 value pair x 1 theta.
        assert len(details) == 4

    def test_independent_records_reduce_to_sensitivity(self):
        """With independent records, Pufferfish = DP and W = query sensitivity."""
        outcomes = [(a, b) for a in range(2) for b in range(2)]
        probs = [0.25] * 4
        inst = entrywise_instantiation(2, 2, [TabularDataModel(outcomes, probs)])
        assert wasserstein_bound(inst, CountQuery()) == pytest.approx(1.0)

    def test_rejects_vector_queries(self, flu_instantiation):
        from repro.core.queries import RelativeFrequencyHistogram

        with pytest.raises(ValidationError):
            wasserstein_bound(flu_instantiation, RelativeFrequencyHistogram(2, 4))

    def test_multiple_thetas_take_supremum(self):
        weak = FluCliqueModel([2], [[0.4, 0.2, 0.4]])
        strong = FluCliqueModel([2], [[0.5, 0.0, 0.5]])  # perfectly correlated
        inst_weak = entrywise_instantiation(2, 2, [weak])
        inst_both = entrywise_instantiation(2, 2, [weak, strong])
        w_weak = wasserstein_bound(inst_weak, CountQuery())
        w_both = wasserstein_bound(inst_both, CountQuery())
        assert w_both >= w_weak
        assert w_both == pytest.approx(2.0)  # flipping one flips the other


class TestWassersteinMechanism:
    def test_noise_scale(self, flu_instantiation):
        mech = WassersteinMechanism(flu_instantiation, epsilon=2.0)
        scale = mech.noise_scale(CountQuery(), np.array([0, 1, 1, 0]))
        assert scale == pytest.approx(1.0)  # W=2 over epsilon=2

    def test_release_details(self, flu_instantiation):
        mech = WassersteinMechanism(flu_instantiation, epsilon=1.0)
        release = mech.release(np.array([0, 1, 1, 0]), CountQuery(), rng=0)
        assert release.details["wasserstein_bound"] == pytest.approx(2.0)
        assert release.mechanism == "Wasserstein"

    def test_bound_cached_per_query(self, flu_instantiation):
        mech = WassersteinMechanism(flu_instantiation, epsilon=1.0)
        query = CountQuery()
        first = mech.wasserstein_distance_bound(query)
        second = mech.wasserstein_distance_bound(query)
        assert first == second


class TestGroupSensitivity:
    def test_flu_group_sensitivity_is_four(self):
        """One clique of four: GroupDP sensitivity of the count is 4."""
        sens = group_sensitivity(CountQuery(), 2, 4, [[0, 1, 2, 3]])
        assert sens == pytest.approx(4.0)

    def test_theorem_3_3_flu(self, flu_instantiation):
        """W <= group sensitivity (Theorem 3.3): 2 <= 4 for the flu example."""
        w = wasserstein_bound(flu_instantiation, CountQuery())
        sens = group_sensitivity(CountQuery(), 2, 4, [[0, 1, 2, 3]])
        assert w <= sens

    def test_theorem_3_3_markov_chain(self):
        """W <= group sensitivity for a short chain (one fully-linked group)."""
        chain = MarkovChain([0.7, 0.3], [[0.8, 0.2], [0.3, 0.7]])
        model = MarkovChainModel(chain, 4)
        inst = entrywise_instantiation(4, 2, [model])
        query = StateFrequencyQuery(1, 4)
        w = wasserstein_bound(inst, query)
        sens = group_sensitivity(query, 2, 4, [[0, 1, 2, 3]])
        assert w <= sens + 1e-12

    def test_singleton_groups_match_entry_sensitivity(self):
        sens = group_sensitivity(CountQuery(), 2, 3, [[0], [1], [2]])
        assert sens == pytest.approx(1.0)


class TestIndependenceGroups:
    def test_independent_records_are_singletons(self):
        outcomes = [(a, b) for a in range(2) for b in range(2)]
        model = TabularDataModel(outcomes, [0.25] * 4)
        assert independence_groups([model]) == [[0], [1]]

    def test_clique_model_is_one_group(self):
        model = FluCliqueModel([3], [[0.2, 0.2, 0.2, 0.4]])
        assert independence_groups([model]) == [[0, 1, 2]]

    def test_two_cliques_are_two_groups(self):
        model = FluCliqueModel([2, 2], [[0.5, 0.0, 0.5], [0.5, 0.0, 0.5]])
        assert independence_groups([model]) == [[0, 1], [2, 3]]
