"""In-process smoke of the service HTTP surface.

Drives the full ASGI app through :class:`~repro.service.testing.
TestClient` — no sockets — covering the calibrate/release/stream endpoint
families, the refusal taxonomy (400/404/405/409/410/429 mapping), restart
rehydration through a durable store, and the stdlib HTTP server bridge.
This file is the CI service-smoke lane."""

from __future__ import annotations

import json
import threading

import pytest

from repro.service import create_app
from repro.service.testing import TestClient


@pytest.fixture()
def client():
    app = create_app()  # in-memory store, default demo workloads
    yield TestClient(app)
    app.service.close()


def _tenant(client, name="acme", budget=4.0, accountant="renyi"):
    response = client.post(
        f"/tenants/{name}",
        {"budget": budget, "accountant": accountant, "delta": 1e-5},
    )
    assert response.status == 200
    return response.json()


# -- inventory -------------------------------------------------------------
def test_health_and_inventory(client):
    health = client.get("/health").json()
    assert health["status"] == "ok"
    assert health["workloads"] == ["hub-gaussian", "hub-laplace"]
    workloads = client.get("/workloads").json()["workloads"]
    assert {w["name"] for w in workloads} == {"hub-gaussian", "hub-laplace"}
    assert client.get("/tenants").json() == {"tenants": []}


# -- tenants ---------------------------------------------------------------
def test_tenant_lifecycle(client):
    created = _tenant(client)
    assert created["budget"] == 4.0
    assert created["accountant"] == "RenyiAccountant"
    snapshot = client.get("/tenants/acme").json()
    assert snapshot["spent_epsilon"] == 0.0
    # Idempotent re-create never rewrites the budget.
    again = client.post("/tenants/acme", {"budget": 99.0}).json()
    assert again["budget"] == 4.0


def test_unknown_tenant_is_404(client):
    for path, method, body in [
        ("/tenants/ghost", "GET", None),
        ("/tenants/ghost/calibrate", "POST", {"workload": "hub-laplace"}),
        ("/tenants/ghost/release", "POST", {"workload": "hub-laplace"}),
        ("/tenants/ghost/stream", "POST", {"workload": "hub-laplace", "n_reserved": 1}),
    ]:
        response = client.request(method, path, json_body=body)
        assert response.status == 404, path
        assert response.json()["error"] == "UnknownTenantError"


# -- calibrate -------------------------------------------------------------
def test_calibrate_is_budget_free(client):
    _tenant(client)
    first = client.post("/tenants/acme/calibrate", {"workload": "hub-laplace"})
    assert first.status == 200
    assert first.json()["noise_scale"] > 0
    again = client.post("/tenants/acme/calibrate", {"workload": "hub-laplace"})
    assert again.json()["cache"]["hits"] >= 1  # warm second time
    assert client.get("/tenants/acme").json()["spent_epsilon"] == 0.0


# -- release ---------------------------------------------------------------
def test_release_debits_and_is_seedable(client):
    _tenant(client)
    response = client.post(
        "/tenants/acme/release", {"workload": "hub-laplace", "n": 3, "seed": 7}
    )
    assert response.status == 200
    body = response.json()
    assert body["n"] == 3 and len(body["values"]) == 3
    assert body["ledger"]["spent_epsilon"] > 0
    assert body["ledger"]["reserved_releases"] == 0  # reservation returned
    # Seeded releases are reproducible for a fresh tenant.
    _tenant(client, name="beta")
    replay = client.post(
        "/tenants/beta/release", {"workload": "hub-laplace", "n": 3, "seed": 7}
    ).json()
    assert replay["values"] == body["values"]


def test_release_refuses_over_budget_atomically(client):
    _tenant(client, budget=1.0, accountant="linear")
    refused = client.post(
        "/tenants/acme/release", {"workload": "hub-laplace", "n": 100}
    )
    assert refused.status == 429
    payload = refused.json()
    assert payload["error"] == "BudgetExhaustedError"
    assert payload["ledger"]["budget"] == 1.0
    assert payload["ledger"]["n_completed"] == 0
    # Nothing was recorded or left reserved.
    snapshot = client.get("/tenants/acme").json()
    assert snapshot["spent_epsilon"] == 0.0
    assert snapshot["reserved_releases"] == 0
    # The budget still serves what fits.
    assert (
        client.post("/tenants/acme/release", {"workload": "hub-laplace", "n": 2}).status
        == 200
    )


# -- stream ----------------------------------------------------------------
def test_stream_session_lifecycle(client):
    _tenant(client)
    opened = client.post(
        "/tenants/acme/stream",
        {"workload": "hub-gaussian", "n_reserved": 5, "seed": 3},
    ).json()
    sid = opened["session_id"]
    assert opened["n_reserved"] == 5

    chunk = client.post(f"/sessions/{sid}/next", {"n": 3}).json()
    assert chunk["n"] == 3 and chunk["n_remaining"] == 2
    # Draw past the reservation: take() returns the remainder, then nothing.
    chunk = client.post(f"/sessions/{sid}/next", {"n": 10}).json()
    assert chunk["n"] == 2 and chunk["exhausted"] is True

    closed = client.delete(f"/sessions/{sid}").json()
    assert closed["n_yielded"] == 5 and closed["n_returned"] == 0
    assert closed["ledger"]["reserved_releases"] == 0

    assert client.delete(f"/sessions/{sid}").status == 404
    assert client.post(f"/sessions/{sid}/next", {"n": 1}).status == 404


def test_stream_close_returns_unused_budget(client):
    _tenant(client, budget=2.0, accountant="linear")
    sid = client.post(
        "/tenants/acme/stream", {"workload": "hub-laplace", "n_reserved": 4}
    ).json()["session_id"]
    # The whole budget is reserved: another release is refused...
    assert (
        client.post("/tenants/acme/release", {"workload": "hub-laplace"}).status == 429
    )
    client.post(f"/sessions/{sid}/next", {"n": 1})
    closed = client.delete(f"/sessions/{sid}").json()
    assert closed["n_returned"] == 3
    # ...and comes back when the session closes early.
    assert (
        client.post("/tenants/acme/release", {"workload": "hub-laplace"}).status == 200
    )


def test_stream_matches_release_prefix(client):
    """A streamed session and a batched release under the same seed yield
    identical values — the service preserves the engine's bit-identity."""
    _tenant(client, name="s1")
    _tenant(client, name="s2")
    sid = client.post(
        "/tenants/s1/stream",
        {"workload": "hub-laplace", "n_reserved": 4, "seed": 11},
    ).json()["session_id"]
    streamed = client.post(f"/sessions/{sid}/next", {"n": 4}).json()["values"]
    client.delete(f"/sessions/{sid}")
    batched = client.post(
        "/tenants/s2/release", {"workload": "hub-laplace", "n": 4, "seed": 11}
    ).json()["values"]
    assert streamed == batched


# -- validation / routing ---------------------------------------------------
def test_validation_errors_are_400(client):
    _tenant(client)
    cases = [
        ("/tenants/acme/release", {"workload": "nope"}),
        ("/tenants/acme/release", {"workload": "hub-laplace", "n": 0}),
        ("/tenants/acme/release", {"workload": "hub-laplace", "n": "three"}),
        ("/tenants/acme/release", {}),
        ("/tenants/acme/stream", {"workload": "hub-laplace"}),  # no n_reserved
        ("/tenants/acme", {"accountant": "exotic"}),
        ("/tenants/acme", {"budget": -1}),
    ]
    for path, body in cases:
        response = client.post(path, body)
        assert response.status == 400, (path, body, response.json())


def test_malformed_json_is_400(client):
    _tenant(client)
    empty = client.request("POST", "/tenants/acme/release")
    assert empty.status == 400  # empty body -> missing workload
    bad = client.post("/tenants/acme/release", json_body="not-an-object")
    assert bad.status == 400
    assert "object" in bad.json()["message"]


def test_unknown_route_and_method(client):
    assert client.get("/nope").status == 404
    assert client.request("PUT", "/tenants/acme").status == 405


# -- durability through the app --------------------------------------------
def test_restart_rehydrates_through_the_app(tmp_path):
    path = str(tmp_path / "ledgers.sqlite")
    app = create_app(path)
    client = TestClient(app)
    _tenant(client)
    spent = client.post(
        "/tenants/acme/release", {"workload": "hub-gaussian", "n": 3, "seed": 0}
    ).json()["ledger"]["spent_epsilon"]
    app.service.close()

    reborn = TestClient(create_app(path))
    snapshot = reborn.get("/tenants/acme").json()
    assert snapshot["spent_epsilon"] == spent  # bit-identical, not approx
    assert snapshot["n_releases"] == 3
    reborn.app.service.close()


def test_concurrent_clients_share_one_budget(client):
    """Many threads hammering /release against one tenant stop at exactly
    the linear cap — the HTTP layer preserves the ledger's exactness."""
    _tenant(client, budget=3.0, accountant="linear")
    served = []
    lock = threading.Lock()

    def worker() -> None:
        while True:
            response = client.post(
                "/tenants/acme/release", {"workload": "hub-laplace", "n": 1}
            )
            if response.status == 429:
                return
            assert response.status == 200
            with lock:
                served.append(1)

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert sum(served) == int(3.0 / 0.5)


# -- the stdlib HTTP server bridge -----------------------------------------
def test_http_server_round_trip(tmp_path):
    """One real socket round trip through repro.service.server."""
    import asyncio
    import urllib.request

    from repro.service.server import serve_async

    app = create_app()
    ports: list[int] = []
    stop = threading.Event()

    def run() -> None:
        async def main() -> None:
            server = await serve_async(app, "127.0.0.1", 0)
            ports.append(server.sockets[0].getsockname()[1])
            async with server:
                while not stop.is_set():
                    await asyncio.sleep(0.02)

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    try:
        import time

        deadline = time.monotonic() + 10
        while not ports and time.monotonic() < deadline:
            time.sleep(0.01)
        assert ports, "server never came up"
        port = ports[0]

        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/health", timeout=10
        ) as response:
            assert response.status == 200
            assert json.loads(response.read())["status"] == "ok"

        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/tenants/acme",
            data=json.dumps({"budget": 2.0}).encode(),
            method="POST",
            headers={"content-type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            assert json.loads(response.read())["budget"] == 2.0
    finally:
        stop.set()
        thread.join(timeout=10)
        app.service.close()


# -- Retry-After signalling -------------------------------------------------
def test_429_with_outstanding_reservations_carries_retry_after(client):
    _tenant(client, budget=2.0, accountant="linear")
    sid = client.post(
        "/tenants/acme/stream", {"workload": "hub-laplace", "n_reserved": 4}
    ).json()["session_id"]
    refused = client.post("/tenants/acme/release", {"workload": "hub-laplace"})
    assert refused.status == 429
    # The held budget returns by the reservation TTL at the latest, so the
    # refusal names a horizon: Retry-After header + structured field.
    assert refused.headers["retry-after"] == "3600"
    assert refused.json()["retry_after"] == 3600.0
    client.delete(f"/sessions/{sid}")


def test_429_with_nothing_outstanding_is_final(client):
    _tenant(client, budget=1.0, accountant="linear")
    refused = client.post(
        "/tenants/acme/release", {"workload": "hub-laplace", "n": 100}
    )
    assert refused.status == 429
    # No reservation will ever expire to free this budget: no Retry-After.
    assert "retry-after" not in refused.headers
    assert "retry_after" not in refused.json()


def test_lock_timeout_is_503_with_retry_after():
    from repro.faults import FaultRule, injected

    app = create_app(retry_policy=False)  # raw store: no transparent retry
    client = TestClient(app)
    _tenant(client)
    with injected(
        [FaultRule("tenant.reserve", action="error", error="lock_timeout")]
    ):
        response = client.post(
            "/tenants/acme/release", {"workload": "hub-laplace"}
        )
    assert response.status == 503
    assert response.json()["error"] == "LockTimeoutError"
    assert response.headers["retry-after"] == "1"
    app.service.close()


# -- idempotency keys -------------------------------------------------------
def test_idempotent_release_debits_once_and_replays(client):
    _tenant(client, budget=4.0, accountant="linear")
    body = {"workload": "hub-laplace", "n": 3, "idempotency_key": "req-42"}
    first = client.post("/tenants/acme/release", body)
    assert first.status == 200
    original = first.json()
    assert original["replayed"] is False
    assert original["idempotency_key"] == "req-42"
    spent = original["ledger"]["spent_epsilon"]

    # The client lost the response and retries: same key, one debit, the
    # original values byte-for-byte.
    retry = client.post("/tenants/acme/release", body).json()
    assert retry["replayed"] is True
    assert retry["values"] == original["values"]
    assert retry["ledger"]["spent_epsilon"] == spent
    assert retry["ledger"]["idempotency_records"] == 1

    # A different key is a different request and debits again.
    other = client.post(
        "/tenants/acme/release", {**body, "idempotency_key": "req-43"}
    ).json()
    assert other["replayed"] is False
    assert other["ledger"]["spent_epsilon"] == pytest.approx(2 * spent)


def test_idempotent_replay_survives_restart(tmp_path):
    path = str(tmp_path / "ledgers.sqlite")
    app = create_app(path)
    client = TestClient(app)
    _tenant(client)
    body = {"workload": "hub-laplace", "n": 2, "idempotency_key": "once"}
    original = client.post("/tenants/acme/release", body).json()
    app.service.close()

    reborn = TestClient(create_app(path))
    replay = reborn.post("/tenants/acme/release", body).json()
    assert replay["replayed"] is True
    assert replay["values"] == original["values"]
    assert (
        replay["ledger"]["spent_epsilon"] == original["ledger"]["spent_epsilon"]
    )
    reborn.app.service.close()


# -- deadlines and backpressure ---------------------------------------------
def test_saturated_service_returns_503_immediately(client):
    app = client.app
    assert app._slots is not None
    assert app._slots.acquire(blocking=False)  # hold every slot ourselves
    held = 1
    while app._slots.acquire(blocking=False):
        held += 1
    try:
        response = client.get("/health")
        assert response.status == 503
        assert response.json()["error"] == "ServiceSaturated"
        assert response.headers["retry-after"] == "1"
    finally:
        for _ in range(held):
            app._slots.release()
    assert client.get("/health").status == 200  # slots freed, service back


def test_request_deadline_returns_503_timeout():
    import time

    from repro.faults import FaultRule, injected

    app = create_app(request_timeout=0.05)
    client = TestClient(app)
    _tenant(client)
    with injected(
        [FaultRule("tenant.reserve", action="latency", delay=0.5)]
    ):
        response = client.post(
            "/tenants/acme/release", {"workload": "hub-laplace"}
        )
    assert response.status == 503
    assert response.json()["error"] == "RequestTimeout"
    assert response.headers["retry-after"] == "1"
    time.sleep(0.7)  # let the abandoned worker thread finish cleanly
    app.service.close()


def test_timeout_of_queued_request_does_not_leak_slots():
    # Regression: a request that was admitted (slot held) but whose work
    # item was cancelled by the deadline before any worker picked it up
    # used to leak its slot permanently — enough leaks saturated the
    # service into an unrecoverable 503 ServiceSaturated.
    app = create_app(request_timeout=0.05, max_concurrency=2)
    client = TestClient(app)
    gate = threading.Event()
    # Occupy every pool worker from outside the slot system, forcing
    # admitted requests to queue exactly as an undersized pool would.
    blockers = [app._executor.submit(gate.wait) for _ in range(2)]
    try:
        for _ in range(2):
            response = client.get("/health")
            assert response.status == 503
            assert response.json()["error"] == "RequestTimeout"
    finally:
        gate.set()
    for blocker in blockers:
        blocker.result(timeout=5)
    # Every slot must be back; a leak would 503 ServiceSaturated forever.
    assert client.get("/health").status == 200
    app.service.close()


# -- recovery sweep ----------------------------------------------------------
def test_admin_recover_reclaims_expired_reservations():
    import time

    app = create_app(reservation_ttl=0.05)
    client = TestClient(app)
    _tenant(client, budget=2.0, accountant="linear")
    client.post(
        "/tenants/acme/stream", {"workload": "hub-laplace", "n_reserved": 4}
    )
    assert client.get("/tenants/acme").json()["reserved_releases"] == 4
    time.sleep(0.1)  # past the TTL: the session is presumed dead
    report = client.post("/admin/recover").json()
    assert report["expired_reservations"] == 1
    assert report["reclaimed_releases"] == 4
    assert report["tenants"]["acme"]["outstanding_reservations"] == 0
    assert client.get("/tenants/acme").json()["reserved_releases"] == 0
    app.service.close()


def test_startup_recovery_sweep_runs(tmp_path):
    import time

    path = str(tmp_path / "ledgers.json")
    app = create_app(path, reservation_ttl=0.05)
    client = TestClient(app)
    _tenant(client, budget=2.0, accountant="linear")
    client.post(
        "/tenants/acme/stream", {"workload": "hub-laplace", "n_reserved": 4}
    )
    app.service.store.close()  # simulate abrupt death: session never closed
    time.sleep(0.1)

    reborn = create_app(path, reservation_ttl=0.05)  # sweeps at construction
    snapshot = TestClient(reborn).get("/tenants/acme").json()
    assert snapshot["reserved_releases"] == 0  # stranded budget reclaimed
    reborn.service.close()


# -- fault observability and the 500 catch-all -------------------------------
def test_admin_faults_reports_injector_state(client):
    from repro.faults import FaultRule, injected

    assert client.get("/admin/faults").json() == {"installed": False}
    with injected([FaultRule("no.such.point", action="latency")]):  # repro-lint: disable=R5 -- deliberately unmatched: asserts idle rules are observable but inert
        status = client.get("/admin/faults").json()
    assert status["installed"] is True
    assert status["rules"][0]["point"] == "no.such.point"


def test_admin_faults_reports_chaos_coverage(client):
    from repro.faults import FAULT_POINTS, FaultRule, current, injected

    rules = [
        FaultRule("tenant.reserve", action="latency", delay=0.0),
        FaultRule("zz.typo.*", action="latency"),  # repro-lint: disable=R5 -- deliberately unmatched: exercises the coverage report
    ]
    with injected(rules):
        current().fire("tenant.reserve")
        status = client.get("/admin/faults").json()
    coverage = status["coverage"]
    assert coverage["unmatched_rules"] == ["zz.typo.*"]
    assert "tenant.reserve" not in coverage["never_fired"]
    assert set(coverage["never_fired"]) == set(FAULT_POINTS) - {
        "tenant.reserve"
    }


def test_unexpected_handler_error_is_500_not_a_crash(client):
    def boom():
        raise RuntimeError("wires crossed")

    client.app._routes.append(("GET", ("boom",), boom, False))
    response = client.get("/boom")
    assert response.status == 500
    payload = response.json()
    assert payload["error"] == "InternalError"
    assert "RuntimeError" in payload["message"]
    assert client.get("/health").status == 200  # the app survived
