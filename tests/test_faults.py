"""The fault-injection subsystem, exercised point by point.

Covers the injector itself (rule matching, scheduling, determinism, the
``REPRO_FAULTS`` wire format), the retrying store wrapper (what retries,
what must not, backoff/deadline bounds), the fault points compiled into
every ledger store backend, and the crash-between-``mkstemp``-and-
``os.replace`` recovery paths of both atomic file writers (ledger store
and calibration cache): a simulated crash leaves the temp file behind
exactly as a power loss would, and the next successful commit sweeps it.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.exceptions import (
    BudgetExhaustedError,
    ReproError,
    ValidationError,
)
from repro.faults import (
    ERROR_KINDS,
    EXIT_STATUS,
    FaultInjector,
    FaultRule,
    SimulatedCrashError,
    current,
    fire,
    injected,
    injector_from_spec,
    install,
    uninstall,
)
from repro.service.ledger import TenantLedger
from repro.service.retry import (
    RetryingLedgerStore,
    RetryPolicy,
    is_transient_store_error,
    with_retries,
)
from repro.service.stores import (
    InMemoryLedgerStore,
    JSONFileLedgerStore,
    SQLiteLedgerStore,
)
from repro.utils.filelock import LockTimeoutError


@pytest.fixture(autouse=True)
def _no_leaked_injector():
    uninstall()
    yield
    uninstall()


# -- the injector ----------------------------------------------------------
def test_fire_is_noop_without_injector():
    assert current() is None
    fire("anything.at.all")  # must not raise


def test_error_rule_raises_each_kind():
    for kind, factory in ERROR_KINDS.items():
        injector = FaultInjector([FaultRule("p", action="error", error=kind)])
        expected = type(factory("x"))
        with pytest.raises(expected):
            injector.fire("p")


def test_fnmatch_patterns_and_context_history():
    injector = FaultInjector(
        [FaultRule("ledger.json.*", action="error", error="io", times=2)]
    )
    injector.fire("ledger.sqlite.commit")  # no match
    with pytest.raises(OSError):
        injector.fire("ledger.json.commit", tenant="t")
    with pytest.raises(OSError):
        injector.fire("ledger.json.read")
    injector.fire("ledger.json.commit")  # times exhausted
    assert injector.fired("ledger.json.*") == 2
    assert injector.fired("ledger.sqlite.*") == 0
    assert injector.history[0]["context"] == {"tenant": "t"}
    stats = injector.stats()
    assert stats["total_fired"] == 2
    assert stats["rules"][0]["hits"] == 3


def test_fired_counts_stay_exact_past_history_bound():
    # fired() must come from durable counters, not the trimmed history —
    # a long chaos run that overflows max_history still counts exactly.
    injector = FaultInjector(
        [FaultRule("p", action="latency", delay=0.0, times=None)],
        max_history=5,
    )
    for _ in range(20):
        injector.fire("p")
    assert len(injector.history) == 5
    assert injector.fired("p") == 20
    assert injector.fired() == 20
    assert injector.stats()["total_fired"] == 20


def test_zero_max_history_disables_history_not_counts():
    injector = FaultInjector(
        [FaultRule("p", action="latency", delay=0.0, times=None)],
        max_history=0,
    )
    for _ in range(3):
        injector.fire("p")
    assert injector.history == []
    assert injector.fired("p") == 3


def test_negative_max_history_is_rejected():
    with pytest.raises(ValidationError):
        FaultInjector([], max_history=-1)


def test_after_skips_initial_hits():
    injector = FaultInjector([FaultRule("p", after=2)])
    injector.fire("p")
    injector.fire("p")
    with pytest.raises(OSError):
        injector.fire("p")


def test_probabilistic_schedule_is_seed_deterministic():
    def schedule(seed):
        injector = FaultInjector(
            [FaultRule("p", probability=0.5, times=None)], seed=seed
        )
        fired = []
        for i in range(40):
            try:
                injector.fire("p")
                fired.append(False)
            except OSError:
                fired.append(True)
        return fired

    assert schedule(7) == schedule(7)
    assert schedule(7) != schedule(8)
    assert any(schedule(7)) and not all(schedule(7))


def test_at_most_one_rule_acts_per_call():
    injector = FaultInjector(
        [
            FaultRule("p", action="error", error="io"),
            FaultRule("p", action="error", error="lock_timeout", times=None),
        ]
    )
    with pytest.raises(OSError):
        injector.fire("p")
    # First rule exhausted; second now gets its turn — and its own counter.
    with pytest.raises(LockTimeoutError):
        injector.fire("p")


def test_crash_rule_is_base_exception():
    injector = FaultInjector([FaultRule("p", action="crash")])
    with pytest.raises(SimulatedCrashError) as info:
        injector.fire("p")
    assert not isinstance(info.value, Exception)
    assert info.value.simulates_crash is True


def test_rule_validation():
    with pytest.raises(ValidationError):
        FaultRule("p", action="explode")
    with pytest.raises(ValidationError):
        FaultRule("p", error="nope")
    with pytest.raises(ValidationError):
        FaultRule("p", probability=1.5)
    with pytest.raises(ValidationError):
        FaultRule("p", times=0)


def test_injected_context_manager_restores_previous():
    outer = install(FaultInjector())
    with injected([FaultRule("p")]) as inner:
        assert current() is inner
        with pytest.raises(OSError):
            fire("p")
    assert current() is outer


def test_injector_from_spec_round_trip():
    spec = {
        "seed": 3,
        "rules": [{"point": "ledger.*", "action": "latency", "delay": 0.0}],
    }
    injector = injector_from_spec(spec)
    assert injector.rules[0].point == "ledger.*"
    import json

    assert injector_from_spec(json.dumps(spec)).rules[0].action == "latency"
    with pytest.raises(ValidationError):
        injector_from_spec("not json")
    with pytest.raises(ValidationError):
        injector_from_spec('["a list"]')
    with pytest.raises(ValidationError):
        injector_from_spec('{"rules": "nope"}')
    assert EXIT_STATUS == 17  # the wire contract kill-recovery tests rely on


# -- the retrying store wrapper --------------------------------------------
def test_transient_classification():
    assert is_transient_store_error(LockTimeoutError("t"))
    assert is_transient_store_error(OSError(5, "eio"))
    assert is_transient_store_error(sqlite3.OperationalError("database is locked"))
    assert not is_transient_store_error(sqlite3.OperationalError("syntax error"))
    assert not is_transient_store_error(ValidationError("v"))
    assert not is_transient_store_error(
        BudgetExhaustedError("b", budget=1, spent=1, remaining=0, requested=1)
    )
    assert not is_transient_store_error(RuntimeError("r"))


def _ledger(store, **kwargs):
    ledger = TenantLedger(store, "acme", **kwargs)
    ledger.create(budget=10.0)
    return ledger


def test_retry_absorbs_transient_enter_faults():
    sleeps = []
    store = RetryingLedgerStore(
        InMemoryLedgerStore(),
        RetryPolicy(max_attempts=5, base_delay=0.01),
        sleep=sleeps.append,
    )
    ledger = _ledger(store)
    with injected([FaultRule("ledger.memory.read", error="io", times=3)]):
        reservation = ledger.reserve(2, 1.0)
    assert reservation.n_reserved == 2
    assert len(sleeps) == 3
    assert store.retries == 3
    # Bounded full jitter: sleep k is within [0, base * 2**(k-1)].
    for k, delay in enumerate(sleeps, start=1):
        assert 0.0 <= delay <= 0.01 * 2 ** (k - 1)


def test_retry_gives_up_after_max_attempts():
    sleeps = []
    store = RetryingLedgerStore(
        InMemoryLedgerStore(),
        RetryPolicy(max_attempts=3),
        sleep=sleeps.append,
    )
    ledger = _ledger(store)
    with injected([FaultRule("ledger.memory.read", error="io", times=None)]):
        with pytest.raises(OSError):
            ledger.reserve(1, 1.0)
    assert len(sleeps) == 2  # attempts - 1 sleeps


def test_retry_never_retries_domain_refusals():
    calls = []
    store = RetryingLedgerStore(
        InMemoryLedgerStore(), RetryPolicy(), sleep=calls.append
    )
    ledger = _ledger(store)
    with pytest.raises(BudgetExhaustedError):
        ledger.reserve(100, 1.0)  # 100 * 1.0 > 10.0: deterministic refusal
    assert calls == []


def test_retry_respects_deadline():
    store = RetryingLedgerStore(
        InMemoryLedgerStore(),
        # Any backoff sleep would cross a zero-width deadline budget left
        # after the first attempt, so exactly one attempt's error escapes.
        RetryPolicy(max_attempts=50, base_delay=0.2, max_delay=0.2, deadline=0.05),
        sleep=lambda _s: None,
    )
    ledger = _ledger(store)
    with injected([FaultRule("ledger.memory.read", error="io", times=None)]) as inj:
        with pytest.raises(OSError):
            ledger.reserve(1, 1.0)
    assert inj.fired() < 50


def test_retry_run_replays_whole_cycle_after_commit_fault():
    # An error *after* the commit landed: run() re-runs the closure, which
    # must observe the committed state and stay exactly-once by idempotency.
    store = RetryingLedgerStore(
        InMemoryLedgerStore(), RetryPolicy(max_attempts=4), sleep=lambda _s: None
    )
    ledger = _ledger(store)
    reservation = ledger.reserve(3, 1.0)
    with injected(
        [FaultRule("ledger.memory.commit.after", error="io", times=1)]
    ):
        response, replayed = ledger.consume_idempotent(
            reservation.reservation_id,
            3,
            epsilon=1.0,
            idempotency_key="req-1",
            response={"values": [1, 2, 3]},
        )
    # The first cycle committed, errored after, and the re-run replayed it.
    assert response == {"values": [1, 2, 3]}
    assert replayed is True
    assert ledger.snapshot()["spent_epsilon"] == pytest.approx(3.0)


def test_retry_run_replays_keyless_consume_after_commit_fault():
    # A transient error *after* the commit landed must not double-debit a
    # keyless consume: the private per-call idempotency key turns the
    # wrapper's whole-cycle re-run into a replay of the committed result.
    store = RetryingLedgerStore(
        InMemoryLedgerStore(), RetryPolicy(max_attempts=4), sleep=lambda _s: None
    )
    ledger = _ledger(store)
    reservation = ledger.reserve(4, 1.0)
    with injected(
        [FaultRule("ledger.memory.commit.after", error="io", times=1)]
    ):
        after = ledger.consume(reservation.reservation_id, 2, epsilon=1.0)
    assert (after.n_consumed, after.n_remaining) == (2, 2)
    assert ledger.snapshot()["spent_epsilon"] == pytest.approx(2.0)

    # Draining flavor: without the key, the re-run would find 0 releases
    # left and raise ReservationError while the budget was already spent.
    with injected(
        [FaultRule("ledger.memory.commit.after", error="io", times=1)]
    ):
        final = ledger.consume(reservation.reservation_id, 2, epsilon=1.0)
    assert (final.n_consumed, final.n_remaining) == (4, 0)
    assert ledger.snapshot()["spent_epsilon"] == pytest.approx(4.0)


def test_with_retries_is_idempotent():
    store = InMemoryLedgerStore()
    wrapped = with_retries(store)
    assert isinstance(wrapped, RetryingLedgerStore)
    assert with_retries(wrapped) is wrapped
    assert wrapped.inner is store


def test_retry_policy_validation():
    with pytest.raises(ValidationError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValidationError):
        RetryPolicy(base_delay=0.5, max_delay=0.1)
    with pytest.raises(ValidationError):
        RetryPolicy(deadline=0)


# -- store fault points, per backend ---------------------------------------
@pytest.fixture(params=["memory", "json", "sqlite"])
def store_and_kind(request, tmp_path):
    if request.param == "memory":
        store = InMemoryLedgerStore()
    elif request.param == "json":
        store = JSONFileLedgerStore(tmp_path / "ledgers.json")
    else:
        store = SQLiteLedgerStore(tmp_path / "ledgers.sqlite")
    yield store, request.param
    store.close()


_COMMIT_POINT = {
    "memory": "ledger.memory.commit",
    "json": "ledger.json.commit",
    "sqlite": "ledger.sqlite.commit",
}


def test_commit_fault_persists_nothing(store_and_kind):
    store, kind = store_and_kind
    ledger = _ledger(store)
    before = ledger.snapshot()
    reservation = ledger.reserve(2, 1.0)
    with injected([FaultRule(_COMMIT_POINT[kind], error="io")]):
        with pytest.raises(OSError):
            ledger.consume(reservation.reservation_id, 2, epsilon=1.0)
    after = ledger.snapshot()
    assert after["spent_epsilon"] == before["spent_epsilon"] == 0.0
    # The reservation survives untouched and is still consumable.
    consumed = ledger.consume(reservation.reservation_id, 2, epsilon=1.0)
    assert consumed.n_consumed == 2


def test_crash_between_mkstemp_and_replace_leaves_then_sweeps_tmp(tmp_path):
    store = JSONFileLedgerStore(tmp_path / "ledgers.json")
    ledger = _ledger(store)
    with injected([FaultRule("ledger.json.commit.replace", action="crash")]):
        with pytest.raises(SimulatedCrashError):
            ledger.reserve(1, 1.0)
    orphans = list(tmp_path.glob("ledgers.json*.tmp"))
    assert len(orphans) == 1  # the crash left its partial write behind
    assert ledger.snapshot()["n_reservations"] == 0  # nothing committed
    # The next successful transaction sweeps the orphan before writing.
    ledger.reserve(1, 1.0)
    assert list(tmp_path.glob("ledgers.json*.tmp")) == []
    assert ledger.snapshot()["n_reservations"] == 1


def test_cache_crash_between_mkstemp_and_replace(tmp_path):
    from repro.serving.cache import JSONFileCache

    cache = JSONFileCache(tmp_path / "cal.json")
    cache.put("k0", {"scale": 1.0})
    with injected([FaultRule("cache.flush.replace", action="crash")]):
        with pytest.raises(SimulatedCrashError):
            cache.put("k1", {"scale": 2.0})
    assert len(list(tmp_path.glob("cal.json*.tmp"))) == 1
    # On-disk store still holds only the pre-crash committed entry.
    fresh = JSONFileCache(tmp_path / "cal.json")
    assert fresh.get("k0") == {"scale": 1.0}
    assert fresh.get("k1") is None
    # Next flush sweeps the orphan and lands the entry.
    cache.put("k1", {"scale": 2.0})
    assert list(tmp_path.glob("cal.json*.tmp")) == []
    assert JSONFileCache(tmp_path / "cal.json").get("k1") == {"scale": 2.0}


def test_cache_nonsimulated_error_still_unlinks_its_tmp(tmp_path):
    from repro.serving.cache import JSONFileCache

    cache = JSONFileCache(tmp_path / "cal.json")
    with injected([FaultRule("cache.flush.replace", error="io")]):
        with pytest.raises(OSError):
            cache.put("k", {"scale": 1.0})
    # An ordinary error is cleaned up eagerly — no orphan left.
    assert list(tmp_path.glob("cal.json*.tmp")) == []


def test_latency_rule_sleeps_not_raises(store_and_kind):
    store, kind = store_and_kind
    ledger = _ledger(store)
    with injected(
        [FaultRule("tenant.reserve", action="latency", delay=0.0, times=None)]
    ) as injector:
        ledger.reserve(1, 1.0)
    assert injector.fired("tenant.reserve") == 1


def test_tenant_fire_points_observe_lifecycle(store_and_kind):
    store, _kind = store_and_kind
    ledger = _ledger(store)
    with injected([]) as injector:  # passive observer: no rules, no faults
        reservation = ledger.reserve(2, 1.0)
        ledger.consume(reservation.reservation_id, 1, epsilon=1.0)
        ledger.release_unused(reservation.reservation_id)
        ledger.sweep()
    assert injector.fired() == 0  # nothing *fired* ...
    # ... but a rule-bearing injector sees each point by name.
    with injected(
        [FaultRule("tenant.*", action="latency", delay=0.0, times=None)]
    ) as injector:
        reservation = ledger.reserve(1, 1.0)
        ledger.release_unused(reservation.reservation_id)
        ledger.sweep()
    assert injector.fired("tenant.reserve") == 1
    assert injector.fired("tenant.release_unused") == 1
    assert injector.fired("tenant.sweep") == 1


# -- the canonical fault-point registry ------------------------------------
def test_registry_covers_every_compiled_fire_site():
    """Every fire("<name>") literal in src/ is declared, and every declared
    point is actually compiled into some source file (no zombie entries).
    The AST-exact version of this check is staticcheck rule R5."""
    import re
    from pathlib import Path

    from repro.faults import FAULT_POINTS

    src = Path(__file__).resolve().parents[1] / "src" / "repro"
    compiled = set()
    for path in src.rglob("*.py"):
        if path.name in ("injector.py", "points.py"):
            continue
        text = path.read_text()
        compiled.update(re.findall(r'fire\(\s*"([^"]+)"', text))
    assert compiled == set(FAULT_POINTS)
    assert all(desc.strip() for desc in FAULT_POINTS.values())


def test_pattern_matching_helpers():
    from repro.faults import matching_points, unmatched_patterns

    assert "tenant.reserve" in matching_points("tenant.*")
    assert matching_points("zz.nothing") == ()
    assert unmatched_patterns(["tenant.*", "zz.nothing", "zz.nothing"]) == (
        "zz.nothing",
    )


def test_injector_validates_points_on_request():
    with pytest.raises(ValidationError, match="no declared fault point"):
        FaultInjector(
            [FaultRule("zz.nothing")],  # repro-lint: disable=R5 -- deliberately unknown: exercises registry validation
            validate_points=True,
        )
    injector = FaultInjector(
        [FaultRule("ledger.*")], validate_points=True
    )
    assert injector.rules[0].point == "ledger.*"
    # The default stays lenient: unit tests arm synthetic points freely.
    lenient = FaultInjector([FaultRule("p")])
    assert lenient.unmatched_rules() == ("p",)


def test_spec_validation_default_and_opt_out():
    with pytest.raises(ValidationError, match="no declared fault point"):
        injector_from_spec(
            {"rules": [{"point": "zz.nothing"}]}  # repro-lint: disable=R5 -- deliberately unknown: exercises spec validation
        )
    injector = injector_from_spec(
        {
            "rules": [{"point": "zz.nothing"}],  # repro-lint: disable=R5 -- deliberately unknown: exercises the validate opt-out
            "validate": False,
        }
    )
    assert injector.rules[0].point == "zz.nothing"


def test_never_fired_coverage_accounting():
    from repro.faults import FAULT_POINTS, never_fired

    with injected(
        [FaultRule("tenant.reserve", action="latency", delay=0.0)]
    ) as injector:
        injector.fire("tenant.reserve")
        remaining = never_fired(injector.fired_per_point())
    assert "tenant.reserve" not in remaining
    assert set(remaining) == set(FAULT_POINTS) - {"tenant.reserve"}
