"""Tier-1 version of the CI benchmarks-import gate.

Benchmarks (``bench_*.py``) are not collected by the default suite, so this
test imports each one — catching refactors that break a benchmark's imports
without waiting for a manual benchmark run.  The same check runs
standalone in CI via ``scripts/check_benchmarks_import.py``.
"""

from __future__ import annotations

import importlib
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "scripts"))

from check_benchmarks_import import benchmark_modules  # noqa: E402


def test_inventory_is_nonempty():
    names = benchmark_modules()
    assert "benchmarks.bench_parallel_calibration" in names
    assert "benchmarks.bench_engine_throughput" in names


@pytest.mark.parametrize("name", benchmark_modules())
def test_benchmark_module_imports(name):
    if str(ROOT) not in sys.path:
        sys.path.insert(0, str(ROOT))
    importlib.import_module(name)
