"""Tier-1 wrapper around the docs link check: every file referenced in
README.md and docs/ must exist (the acceptance criterion that docs describe
the engine accurately)."""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_doc_links", REPO_ROOT / "scripts" / "check_doc_links.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_doc_links", module)
    spec.loader.exec_module(module)
    return module


def test_docs_exist():
    for name in ("README.md", "docs/architecture.md", "docs/api.md"):
        assert (REPO_ROOT / name).exists(), f"{name} is missing"


def test_no_broken_references():
    checker = _load_checker()
    missing = checker.missing_references(REPO_ROOT)
    assert not missing, f"broken documentation references: {missing}"


def test_checker_catches_garbage(tmp_path):
    """The checker itself must flag a reference to a nonexistent file."""
    checker = _load_checker()
    (tmp_path / "docs").mkdir()
    (tmp_path / "README.md").write_text(
        "see [here](src/repro/core/nonexistent.py) and `docs/missing.md`\n"
    )
    (tmp_path / "docs" / "architecture.md").write_text("fine\n")
    (tmp_path / "docs" / "api.md").write_text("fine\n")
    missing = checker.missing_references(tmp_path)
    assert ("README.md", "src/repro/core/nonexistent.py") in missing
    assert ("README.md", "docs/missing.md") in missing
