"""Chaos certification: budget exactness survives faults and process death.

The acceptance bar for the crash-safe lifecycle, in two escalations:

1. **In-process chaos** — worker threads drain one durable tenant through
   the full reserve → draw → consume-idempotent → release cycle while a
   *seeded randomized fault schedule* throws transient errors and
   simulated crashes at every store and ledger fault point.  However the
   schedule lands, the tenant must converge to **exactly**
   ``floor(budget / epsilon)`` consumed releases, with no reservation
   stranded once the recovery sweep has run.  One release too many is a
   privacy violation; one too few means a fault leaked budget.
2. **Process kill-recovery** — real OS worker processes sharing one store,
   armed through ``REPRO_FAULTS`` to ``os._exit`` mid-transaction, plus a
   SIGKILL from the parent mid-flight.  After the survivors finish, the
   sweep reclaims what the dead left behind and a clean second wave drains
   the remainder to the exact same cap.

Both escalations use idempotency keys for every consume, so a cycle
re-run after an ambiguous fault (did the commit land?) stays exactly-once
— which is precisely the mechanism the service's HTTP retries rely on.
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.exceptions import BudgetExhaustedError, ReproError
from repro.faults import FaultRule, injected
from repro.service.ledger import TenantLedger
from repro.service.retry import RetryingLedgerStore, RetryPolicy
from repro.service.stores import JSONFileLedgerStore, SQLiteLedgerStore

SRC = str(Path(__file__).resolve().parent.parent / "src")

BUDGET = 6.0
EPSILON = 0.5
CAP = int(BUDGET / EPSILON)  # 12 releases total, faults notwithstanding
CHUNK = 2
TTL = 0.3  # reservation TTL: how long a crashed cycle can strand budget


def _make_store(kind: str, tmp_path: Path):
    if kind == "json":
        return JSONFileLedgerStore(tmp_path / "ledgers.json")
    return SQLiteLedgerStore(tmp_path / "ledgers.sqlite")


#: The randomized-but-reproducible schedule: transient errors and simulated
#: crashes sprayed across every layer's fault points.  times=None keeps each
#: rule live for the whole run; the seeded injector RNG decides which hits
#: fire.  Transient errors are absorbed by the retrying store; crashes
#: abandon the worker's cycle mid-flight, exactly like a killed request.
def _chaos_rules() -> list[FaultRule]:
    return [
        FaultRule("ledger.*.read", error="io", probability=0.05, times=None),
        FaultRule("ledger.*.commit", error="io", probability=0.05, times=None),
        FaultRule(
            "ledger.sqlite.begin", error="sqlite_busy", probability=0.05, times=None
        ),
        FaultRule(
            "ledger.*.commit.after", error="io", probability=0.05, times=None
        ),
        FaultRule(
            "ledger.json.commit.replace",
            action="crash",
            probability=0.04,
            times=None,
        ),
        FaultRule(
            "tenant.consume", action="crash", probability=0.04, times=None
        ),
        FaultRule(
            "tenant.release_unused", action="crash", probability=0.03, times=None
        ),
        FaultRule(
            "tenant.reserve", action="latency", delay=0.001, probability=0.2,
            times=None,
        ),
    ]


def _chaos_worker(store, index: int, errors: list) -> None:
    """One session loop under chaos: reserve, consume idempotently, release.

    Simulated crashes abandon the current cycle (the reservation strands
    until the TTL sweep); every consume carries a unique idempotency key
    and is retried through ambiguous faults, so it lands exactly once no
    matter how many times the cycle re-runs.
    """
    ledger = TenantLedger(store, "acme", reservation_ttl=TTL)
    iteration = 0
    while True:
        iteration += 1
        key = f"worker{index}-cycle{iteration}"
        try:
            reservation = ledger.reserve(CHUNK, EPSILON)
        except BudgetExhaustedError:
            return  # drained (possibly only temporarily — the main loop decides)
        except BaseException as error:
            if getattr(error, "simulates_crash", False):
                continue  # this "request" died before the reserve committed
            errors.append(error)
            return
        consumed = False
        for _attempt in range(8):
            try:
                ledger.consume_idempotent(
                    reservation.reservation_id,
                    CHUNK,
                    epsilon=EPSILON,
                    idempotency_key=key,
                    response={"worker": index, "cycle": iteration},
                )
                consumed = True
                break
            except (ReproError, OSError):
                break  # reservation expired mid-crash-recovery: give up cycle
            except BaseException as error:
                if getattr(error, "simulates_crash", False):
                    continue  # ambiguous: retry the SAME key — exactly-once
                errors.append(error)
                return
        if consumed:
            try:
                ledger.release_unused(reservation.reservation_id)
            except BaseException as error:
                if not getattr(error, "simulates_crash", False):
                    errors.append(error)
                    return
                # Crashed before the release committed: the fully-consumed
                # husk strands until the sweep reclaims it.


@pytest.mark.parametrize("kind", ["json", "sqlite"])
def test_chaos_schedule_preserves_budget_exactness(kind, tmp_path):
    raw = _make_store(kind, tmp_path)
    store = RetryingLedgerStore(
        raw, RetryPolicy(max_attempts=6, base_delay=0.001, max_delay=0.01)
    )
    try:
        TenantLedger(store, "acme").create(budget=BUDGET)
        errors: list = []
        with injected(_chaos_rules(), seed=1234):
            # Drain rounds under chaos until the ledger reaches steady state:
            # refusals can be transient (stranded reservations still count
            # against admission until the TTL), so sweep and re-drain.
            for _round in range(30):
                threads = [
                    threading.Thread(
                        target=_chaos_worker, args=(store, i, errors)
                    )
                    for i in range(4)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
                assert not errors, errors
                time.sleep(TTL + 0.05)
                ledger = TenantLedger(store, "acme", reservation_ttl=TTL)
                ledger.sweep()
                snapshot = ledger.snapshot()
                if (
                    snapshot["reserved_releases"] == 0
                    and snapshot["remaining_budget"] < EPSILON
                ):
                    break
            else:
                pytest.fail(f"never converged: {snapshot}")

        # The invariant: exactly floor(budget/epsilon) consumed, nothing
        # stranded, nothing minted — regardless of the fault schedule.
        assert snapshot["n_releases"] == CAP
        assert snapshot["spent_epsilon"] == pytest.approx(BUDGET)
        assert snapshot["n_reservations"] == 0
        assert snapshot["reserved_releases"] == 0
    finally:
        store.close()


def test_chaos_schedule_is_reproducible(tmp_path):
    """Same seed, same workload, same store → the same fault schedule
    (the injector's whole point: chaos you can re-run under a debugger)."""

    def run(seed: int, path: Path) -> "tuple[list, int]":
        store = JSONFileLedgerStore(path)
        try:
            ledger = TenantLedger(store, "acme", reservation_ttl=TTL)
            ledger.create(budget=BUDGET)
            with injected(_chaos_rules(), seed=seed) as injector:
                for i in range(40):
                    try:
                        r = ledger.reserve(1, EPSILON)
                        ledger.consume(r.reservation_id, 1, epsilon=EPSILON)
                        ledger.release_unused(r.reservation_id)
                    except BaseException:
                        pass
                points = [e["point"] for e in injector.history]
            return points, ledger.snapshot()["n_releases"]
        finally:
            store.close()

    points_a, served_a = run(99, tmp_path / "a.json")
    points_b, served_b = run(99, tmp_path / "b.json")
    points_c, _ = run(100, tmp_path / "c.json")
    assert points_a == points_b and served_a == served_b
    assert points_a != points_c


#: One worker process: drain the shared ledger with idempotent consumes.
#: REPRO_FAULTS (if set) arms the injector at import — including ``exit``
#: rules that kill the process dead mid-transaction.
_KILLABLE_DRAINER = """
import json, sys
from repro.exceptions import BudgetExhaustedError
from repro.service.ledger import TenantLedger
from repro.service.stores import ledger_store_from_path

path, epsilon, chunk, ttl, tag = (
    sys.argv[1], float(sys.argv[2]), int(sys.argv[3]), float(sys.argv[4]),
    sys.argv[5],
)
store = ledger_store_from_path(path)
ledger = TenantLedger(store, "acme", reservation_ttl=ttl)
served = 0
cycle = 0
while True:
    cycle += 1
    try:
        reservation = ledger.reserve(chunk, epsilon)
    except BudgetExhaustedError:
        break
    try:
        ledger.consume_idempotent(
            reservation.reservation_id, chunk, epsilon=epsilon,
            idempotency_key=f"{tag}-{cycle}", response={"tag": tag},
        )
        served += chunk
    finally:
        ledger.release_unused(reservation.reservation_id)
store.close()
print(json.dumps({"served": served}))
"""


@pytest.mark.parametrize("kind", ["json", "sqlite"])
def test_killed_workers_recover_to_exact_budget(kind, tmp_path):
    """SIGKILL + injected os._exit mid-transaction, one shared store: after
    the recovery sweep and a clean drain, consumed releases land on exactly
    floor(budget / epsilon) and no reservation is stranded."""
    store = _make_store(kind, tmp_path)
    path = str(store.path)
    TenantLedger(store, "acme").create(budget=BUDGET)
    store.close()

    commit_point = (
        "ledger.json.commit.after" if kind == "json" else "ledger.sqlite.commit"
    )
    # Wave 1: slowed by injected latency (so the parent's SIGKILL lands
    # mid-flight), and armed to exit(17) partway through a commit cycle.
    fault_env = json.dumps(
        {
            "seed": 7,
            "rules": [
                {
                    "point": "tenant.consume",
                    "action": "latency",
                    "delay": 0.05,
                    "times": None,
                },
                {"point": commit_point, "action": "exit", "after": 3},
            ],
        }
    )
    base_env = {"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"}

    def spawn(tag: str, env: dict) -> subprocess.Popen:
        return subprocess.Popen(
            [
                sys.executable, "-c", _KILLABLE_DRAINER,
                path, str(EPSILON), str(CHUNK), str(TTL), tag,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )

    wave1 = [
        spawn(f"w1p{i}", {**base_env, "REPRO_FAULTS": fault_env})
        for i in range(3)
    ]
    time.sleep(0.25)
    wave1[0].send_signal(signal.SIGKILL)  # and one genuinely external kill
    statuses = []
    for proc in wave1:
        proc.communicate(timeout=120)
        statuses.append(proc.returncode)
    # At least one worker died by injection (17) or the SIGKILL (-9).
    assert any(code in (17, -signal.SIGKILL) for code in statuses), statuses
    assert all(code in (0, 17, -signal.SIGKILL) for code in statuses), statuses

    # Recovery: wait out the TTL, sweep, and let a clean wave finish.
    time.sleep(TTL + 0.1)
    reopened = _make_store(kind, tmp_path)
    try:
        ledger = TenantLedger(reopened, "acme", reservation_ttl=TTL)
        ledger.sweep()

        wave2 = [spawn(f"w2p{i}", dict(base_env)) for i in range(2)]
        for proc in wave2:
            _out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err

        time.sleep(TTL + 0.1)
        ledger.sweep()
        snapshot = ledger.snapshot()
        assert snapshot["n_releases"] == CAP
        assert snapshot["spent_epsilon"] == pytest.approx(BUDGET)
        assert snapshot["n_reservations"] == 0
        assert snapshot["reserved_releases"] == 0
    finally:
        reopened.close()
