"""Unit tests for input validation helpers."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.utils.rngtools import resolve_rng
from repro.utils.validation import (
    as_probability_vector,
    as_state_sequence,
    as_transition_matrix,
    check_positive,
    check_unit_interval,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(2.5, "x") == 2.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValidationError):
            check_positive(bad, "x")


class TestCheckUnitInterval:
    def test_accepts_bounds_closed(self):
        assert check_unit_interval(0.0, "x") == 0.0
        assert check_unit_interval(1.0, "x") == 1.0

    def test_open_ends_reject_bounds(self):
        with pytest.raises(ValidationError):
            check_unit_interval(0.0, "x", open_ends=True)
        with pytest.raises(ValidationError):
            check_unit_interval(1.0, "x", open_ends=True)

    def test_rejects_outside(self):
        with pytest.raises(ValidationError):
            check_unit_interval(1.2, "x")


class TestProbabilityVector:
    def test_valid_vector_passes(self):
        vec = as_probability_vector([0.25, 0.75])
        assert vec.dtype == np.float64
        np.testing.assert_allclose(vec.sum(), 1.0)

    def test_normalization(self):
        vec = as_probability_vector([2.0, 2.0], normalize=True)
        np.testing.assert_allclose(vec, [0.5, 0.5])

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            as_probability_vector([-0.1, 1.1])

    def test_rejects_bad_sum(self):
        with pytest.raises(ValidationError):
            as_probability_vector([0.5, 0.6])

    def test_rejects_matrix(self):
        with pytest.raises(ValidationError):
            as_probability_vector([[0.5, 0.5]])

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            as_probability_vector([])

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            as_probability_vector([float("nan"), 1.0])

    def test_rejects_zero_mass_normalize(self):
        with pytest.raises(ValidationError):
            as_probability_vector([0.0, 0.0], normalize=True)


class TestTransitionMatrix:
    def test_valid_matrix(self):
        mat = as_transition_matrix([[0.9, 0.1], [0.4, 0.6]])
        np.testing.assert_allclose(mat.sum(axis=1), [1.0, 1.0])

    def test_rejects_non_square(self):
        with pytest.raises(ValidationError):
            as_transition_matrix([[0.5, 0.5]])

    def test_rejects_bad_rows(self):
        with pytest.raises(ValidationError):
            as_transition_matrix([[0.9, 0.2], [0.4, 0.6]])

    def test_rejects_negative_entries(self):
        with pytest.raises(ValidationError):
            as_transition_matrix([[1.1, -0.1], [0.4, 0.6]])


class TestStateSequence:
    def test_valid_sequence(self):
        seq = as_state_sequence([0, 1, 1, 0], 2)
        assert seq.dtype == np.int64

    def test_accepts_integral_floats(self):
        seq = as_state_sequence(np.array([0.0, 1.0]), 2)
        assert seq.tolist() == [0, 1]

    def test_rejects_fractional(self):
        with pytest.raises(ValidationError):
            as_state_sequence(np.array([0.5]), 2)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            as_state_sequence([0, 2], 2)
        with pytest.raises(ValidationError):
            as_state_sequence([-1], 2)


class TestResolveRng:
    def test_seed_determinism(self):
        a = resolve_rng(7).random(3)
        b = resolve_rng(7).random(3)
        np.testing.assert_array_equal(a, b)

    def test_passthrough(self):
        gen = np.random.default_rng(1)
        assert resolve_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(resolve_rng(None), np.random.Generator)

    def test_rejects_strings(self):
        with pytest.raises(ValidationError):
            resolve_rng("seed")
