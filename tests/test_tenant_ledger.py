"""Tenant ledgers: durable accounting plus reservation admission.

Covers the reserve -> consume -> release-unused cycle, its refusal
taxonomy, TTL reclamation of abandoned reservations, restart rehydration
(bit-identical Rényi state through the store), and the
:class:`~repro.service.ledger.ReservationAccountant` driving a real
:class:`~repro.serving.engine.PrivacyEngine`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import GaussianMarkovQuiltMechanism, MarkovQuiltMechanism
from repro.core.accounting import RenyiAccountant
from repro.core.queries import CountQuery
from repro.distributions.structured import hub_and_spoke_network
from repro.exceptions import (
    BudgetExhaustedError,
    PrivacyParameterError,
    ReservationError,
    UnknownReservationError,
    UnknownTenantError,
    ValidationError,
)
from repro.service.ledger import ReservationAccountant, TenantLedger
from repro.service.stores import InMemoryLedgerStore, SQLiteLedgerStore


@pytest.fixture()
def ledger():
    return TenantLedger(InMemoryLedgerStore(), "acme")


def _created(ledger, *, budget=2.0, accountant="linear", **kwargs):
    ledger.create(budget=budget, accountant=accountant, **kwargs)
    return ledger


# -- lifecycle -------------------------------------------------------------
def test_operations_require_created_tenant(ledger):
    with pytest.raises(UnknownTenantError):
        ledger.reserve(1, 0.5)
    with pytest.raises(UnknownTenantError):
        ledger.snapshot()
    with pytest.raises(UnknownTenantError):
        ledger.consume("nope", epsilon=0.5)
    assert not ledger.exists()


def test_create_is_idempotent_and_never_rewrites(ledger):
    _created(ledger, budget=2.0)
    ledger.reserve(1, 0.5)
    again = ledger.create(budget=99.0)  # ignored: existing ledger wins
    assert again["budget"] == 2.0
    assert again["n_reservations"] == 1
    with pytest.raises(ValidationError):
        ledger.create(budget=2.0, exist_ok=False)


def test_tenant_name_validation():
    store = InMemoryLedgerStore()
    with pytest.raises(ValidationError):
        TenantLedger(store, "")
    with pytest.raises(ValidationError):
        TenantLedger(store, "a/b")
    with pytest.raises(ValidationError):
        TenantLedger(store, "ok", reservation_ttl=0)


# -- admission -------------------------------------------------------------
def test_reservations_never_over_commit(ledger):
    _created(ledger, budget=2.0)
    ledger.reserve(3, 0.5)
    ledger.reserve(1, 0.5)  # exactly fills the budget
    with pytest.raises(BudgetExhaustedError) as excinfo:
        ledger.reserve(1, 0.5)
    payload = excinfo.value.ledger()
    assert payload["budget"] == 2.0
    assert payload["spent"] == 0.0  # nothing consumed yet, all reserved


def test_release_unused_returns_budget(ledger):
    _created(ledger, budget=2.0)
    first = ledger.reserve(4, 0.5)
    with pytest.raises(BudgetExhaustedError):
        ledger.reserve(1, 0.5)
    assert ledger.release_unused(first.reservation_id) == 4
    ledger.reserve(4, 0.5)  # the budget came back
    # Unknown/already-released ids are a no-op, not an error.
    assert ledger.release_unused(first.reservation_id) == 0


def test_consume_exactly_once_and_refusals(ledger):
    _created(ledger, budget=2.0)
    res = ledger.reserve(2, 0.5)
    after = ledger.consume(res.reservation_id, epsilon=0.5)
    assert (after.n_consumed, after.n_remaining) == (1, 1)
    with pytest.raises(ReservationError, match="epsilon"):
        ledger.consume(res.reservation_id, epsilon=0.25)
    with pytest.raises(ReservationError, match="left"):
        ledger.consume(res.reservation_id, 2, epsilon=0.5)
    ledger.consume(res.reservation_id, epsilon=0.5)
    snapshot = ledger.snapshot()
    assert snapshot["spent_epsilon"] == pytest.approx(1.0)
    with pytest.raises(ReservationError):
        ledger.consume(res.reservation_id, epsilon=0.5)  # drained
    ledger.release_unused(res.reservation_id)
    with pytest.raises(UnknownReservationError):
        ledger.consume(res.reservation_id, epsilon=0.5)


def test_refused_consume_changes_nothing(ledger):
    _created(ledger, budget=2.0)
    res = ledger.reserve(1, 0.5)
    before = ledger.snapshot()
    with pytest.raises(ReservationError):
        ledger.consume(res.reservation_id, epsilon=0.9)
    assert ledger.snapshot() == before


def test_expired_reservations_stop_counting(ledger):
    ledger = TenantLedger(ledger.store, "acme", reservation_ttl=0.05)
    _created(ledger, budget=2.0)
    stale = ledger.reserve(4, 0.5)  # fills the whole budget
    with pytest.raises(BudgetExhaustedError):
        ledger.reserve(1, 0.5)
    import time

    time.sleep(0.1)
    fresh = ledger.reserve(4, 0.5)  # stale one no longer counts
    assert fresh.n_reserved == 4
    # The expired id is dead, not resurrected.
    with pytest.raises(UnknownReservationError):
        ledger.consume(stale.reservation_id, epsilon=0.5)


def test_admission_prices_renyi_composition(ledger):
    """Rényi admission uses preview() — strong composition, so (for many
    small-epsilon releases) more fit than the linear ``budget/epsilon``
    cap; admission and consumption agree on the arithmetic."""
    budget, epsilon = 10.0, 0.1
    linear_cap = int(budget / epsilon)  # 100
    ledger = TenantLedger(ledger.store, "renyi-t")
    ledger.create(budget=budget, accountant="renyi", delta=1e-5)
    res = ledger.reserve(linear_cap + 20, epsilon)  # overdraws linearly
    for _ in range(linear_cap + 20):
        ledger.consume(res.reservation_id, epsilon=epsilon)
    snapshot = ledger.snapshot()
    assert snapshot["n_releases"] == linear_cap + 20
    assert snapshot["spent_epsilon"] <= budget


def test_parameter_validation(ledger):
    _created(ledger)
    with pytest.raises(PrivacyParameterError):
        ledger.reserve(0, 0.5)
    with pytest.raises(PrivacyParameterError):
        ledger.reserve(1, -0.5)
    res = ledger.reserve(1, 0.5)
    with pytest.raises(PrivacyParameterError):
        ledger.consume(res.reservation_id, 0, epsilon=0.5)
    with pytest.raises(ValidationError):
        ledger.create(budget=2.0, accountant="exotic")


# -- durability ------------------------------------------------------------
def test_restart_rehydrates_renyi_bit_identically(tmp_path):
    """Gaussian releases with mechanism curves, through the store, across a
    simulated restart: the rehydrated accountant's running curve and
    eps(delta) match bit for bit — no envelope slack."""
    network = hub_and_spoke_network(3, 2)
    data = np.ones(len(network.nodes))
    mechanism = GaussianMarkovQuiltMechanism([network], 0.4, delta=1e-5)
    path = tmp_path / "ledgers.sqlite"

    store = SQLiteLedgerStore(path)
    ledger = TenantLedger(store, "acme")
    ledger.create(budget=6.0, accountant="renyi", delta=1e-5)
    res = ledger.reserve(9, 0.4)
    accountant = ReservationAccountant(ledger, res)
    engine = PrivacyEngineFactory(mechanism, accountant)
    engine.release_repeated(data, CountQuery(), 9)
    live = ledger.accountant()
    store.close()

    reopened = SQLiteLedgerStore(path)
    try:
        rehydrated = TenantLedger(reopened, "acme").accountant()
        assert isinstance(rehydrated, RenyiAccountant)
        assert rehydrated.total_epsilon() == live.total_epsilon()
        assert np.array_equal(rehydrated._rdp, live._rdp)
        assert len(rehydrated) == 9
    finally:
        reopened.close()


def PrivacyEngineFactory(mechanism, accountant):
    from repro.serving import PrivacyEngine

    return PrivacyEngine(mechanism, accountant=accountant, rng=0)


# -- ReservationAccountant through the engine ------------------------------
@pytest.fixture()
def workload():
    network = hub_and_spoke_network(3, 2)
    return (
        MarkovQuiltMechanism([network], 0.5),
        np.ones(len(network.nodes)),
        CountQuery(),
    )


def test_reservation_accountant_drives_engine(workload):
    mechanism, data, query = workload
    ledger = TenantLedger(InMemoryLedgerStore(), "acme")
    ledger.create(budget=5.0)
    res = ledger.reserve(6, 0.5)
    accountant = ReservationAccountant(ledger, res)
    engine = PrivacyEngineFactory(mechanism, accountant)

    engine.release_repeated(data, query, 4)
    assert accountant.n_remaining == 2
    assert ledger.snapshot()["spent_epsilon"] == pytest.approx(2.0)

    # Overrunning the session sub-budget refuses atomically: nothing durable
    # or local moves, and the refusal carries the session ledger.
    with pytest.raises(BudgetExhaustedError) as excinfo:
        engine.release_repeated(data, query, 3)
    assert excinfo.value.ledger()["budget"] == pytest.approx(3.0)
    assert accountant.n_remaining == 2
    assert ledger.snapshot()["spent_epsilon"] == pytest.approx(2.0)


def test_reservation_accountant_streams(workload):
    mechanism, data, query = workload
    ledger = TenantLedger(InMemoryLedgerStore(), "acme")
    ledger.create(budget=5.0)
    res = ledger.reserve(5, 0.5)
    engine = PrivacyEngineFactory(mechanism, ReservationAccountant(ledger, res))

    with engine.stream(data, query, block_size=2) as session:
        with pytest.raises(BudgetExhaustedError) as excinfo:
            while True:
                next(session)
    # Stops at exactly the reservation size; the durable ledger agrees.
    assert session.n_yielded == 5
    assert excinfo.value.n_completed == 5
    assert ledger.snapshot()["spent_epsilon"] == pytest.approx(2.5)


def test_reservation_accountant_rejects_foreign_epsilon(workload):
    mechanism, data, query = workload
    ledger = TenantLedger(InMemoryLedgerStore(), "acme")
    ledger.create(budget=5.0)
    res = ledger.reserve(2, 0.25)  # reserved at a different epsilon
    accountant = ReservationAccountant(ledger, res)
    with pytest.raises(ReservationError, match="reserved epsilon"):
        accountant.record(0.5, quilt_signature=("n", ()))
