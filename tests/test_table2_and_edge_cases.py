"""Coverage for the Table 2 harness pieces and assorted edge cases."""

import numpy as np
import pytest

from repro.core.mqm_chain import MQMApprox, MQMExact, chain_max_influence
from repro.core.queries import StateFrequencyQuery
from repro.data.activity import CohortProfile, default_cohorts, generate_cohort
from repro.data.datasets import TimeSeriesDataset
from repro.data.estimation import empirical_chain
from repro.distributions.chain_family import FiniteChainFamily, IntervalChainFamily
from repro.distributions.markov import MarkovChain
from repro.experiments.table2_runtime import dataset_timings, synthetic_timings, time_call


class TestTable2Harness:
    def test_time_call_returns_seconds(self):
        elapsed = time_call(lambda: sum(range(1000)))
        assert 0 <= elapsed < 1.0

    def test_synthetic_timings_structure(self):
        timings = synthetic_timings(grid_points=3)
        assert set(timings) == {"GK16", "MQMApprox", "MQMExact"}
        assert timings["MQMExact"] > 0
        assert timings["MQMApprox"] > 0
        # GK16 applies for some of the 3x3 grid points.
        assert timings["GK16"] is not None

    def test_dataset_timings_on_tiny_cohort(self):
        profile = default_cohorts()[1]
        tiny = CohortProfile(
            name="tiny",
            n_participants=2,
            transition=profile.transition,
            mean_observations=1500,
            mean_segments=2,
        )
        group = generate_cohort(tiny, rng=0)
        chain = empirical_chain(group, smoothing=0.5)
        family = FiniteChainFamily.singleton(chain)
        timings = dataset_timings(family, group.pooled_dataset())
        assert timings["GK16"] is None  # sticky chain: N/A
        assert timings["MQMApprox"] > 0
        assert timings["MQMExact"] > 0


class TestMechanismEdgeCases:
    def test_length_one_chain_exact(self):
        chain = MarkovChain([0.5, 0.5], [[0.7, 0.3], [0.4, 0.6]])
        mech = MQMExact(FiniteChainFamily([chain]), 2.0, max_window=8)
        # Single node: only the trivial quilt, sigma = T / eps = 0.5.
        assert mech.sigma_max(1) == pytest.approx(0.5)

    def test_length_one_chain_approx(self):
        chain = MarkovChain([0.6, 0.4], [[0.8, 0.2], [0.3, 0.7]]).with_stationary_initial()
        mech = MQMApprox(FiniteChainFamily([chain]), 2.0)
        assert mech.sigma_max(1) == pytest.approx(0.5)

    def test_first_node_right_quilt_influence(self):
        """Node 0 owns no past; right-only quilts need no marginal term."""
        chain = MarkovChain([1.0, 0.0], [[0.9, 0.1], [0.4, 0.6]])
        value = chain_max_influence(chain, 0, None, 2)
        assert 0.0 <= value < np.inf

    def test_free_initial_first_node(self):
        family_chain = MarkovChain([0.5, 0.5], [[0.8, 0.2], [0.3, 0.7]])
        value = chain_max_influence(family_chain, 0, None, 1, free_initial=True)
        # max over ordered pairs and futures of log P(x,v)/P(x',v):
        # the binding direction is (x=1, x'=0) at v=1: log(0.7/0.2).
        assert value == pytest.approx(np.log(0.7 / 0.2))

    def test_sigma_cache_reuse(self):
        chain = MarkovChain([0.6, 0.4], [[0.8, 0.2], [0.3, 0.7]]).with_stationary_initial()
        mech = MQMExact(FiniteChainFamily([chain]), 1.0, max_window=32)
        first = mech.sigma_max([100, 200])
        second = mech.sigma_max([200, 100])  # same set, different order
        assert first == second
        assert len(mech._sigma_cache) == 1

    def test_interval_family_general_gap(self):
        """The general (P P*) eigengap route for the continuum family."""
        family = IntervalChainFamily(0.3, grid_step=0.2)
        general = MQMApprox(family, 1.0, reversible=False)
        reversible = MQMApprox(family, 1.0, reversible=True)
        assert general.gap <= reversible.gap
        assert general.sigma_max(200) >= reversible.sigma_max(200)

    def test_noise_scale_accepts_plain_arrays(self):
        chain = MarkovChain([0.6, 0.4], [[0.8, 0.2], [0.3, 0.7]]).with_stationary_initial()
        mech = MQMApprox(FiniteChainFamily([chain]), 1.0)
        query = StateFrequencyQuery(1, 50)
        scale = mech.noise_scale(query, np.zeros(50, dtype=np.int64))
        assert scale > 0


class TestDatasetEdgeCases:
    def test_single_observation_segment(self):
        data = TimeSeriesDataset([np.array([1])], 2)
        assert data.longest_segment == 1
        np.testing.assert_allclose(data.relative_frequencies(), [0.0, 1.0])

    def test_concatenated_cache_tracks_segments(self):
        data = TimeSeriesDataset([np.array([0, 1]), np.array([1])], 2)
        first = data.concatenated
        np.testing.assert_array_equal(first, [0, 1, 1])
        # Cached value is reused on repeat access.
        assert data.concatenated is first

    def test_len_protocol(self):
        data = TimeSeriesDataset([np.array([0, 0, 1])], 2)
        assert len(data) == 3
