"""Numeric verification of Theorem 4.4 (sequential composition).

Pufferfish does not compose in general because both releases see the *same*
correlated database.  Theorem 4.4 proves the Markov Quilt Mechanism does
compose (to K * eps) when every release uses the same active quilts.  Here we
check that claim directly: the joint density of two Laplace releases is

    P(M1 = w1, M2 = w2 | s, theta)
      = sum_x P(x | s, theta) * Lap(w1 - F1(x); b1) * Lap(w2 - F2(x); b2)

and the likelihood ratio over a secret pair must stay within e^{2 eps} on a
(w1, w2) grid.  Note the ratio does NOT factor across releases — the shared
x couples them — which is precisely why the theorem needs a proof.
"""

import numpy as np
import pytest

from repro.core.framework import entrywise_instantiation
from repro.core.laplace import laplace_density
from repro.core.models import MarkovChainModel
from repro.core.mqm_chain import MQMExact
from repro.core.queries import CountQuery, StateFrequencyQuery
from repro.distributions.chain_family import FiniteChainFamily
from repro.distributions.markov import MarkovChain

LENGTH = 4
CHAIN = MarkovChain([0.6, 0.4], [[0.85, 0.15], [0.25, 0.75]])


def joint_density(model, queries, scales, secret, grids):
    """Joint density of the two releases given the secret, on a 2-D grid."""
    density = np.zeros((grids[0].size, grids[1].size))
    mass = 0.0
    for row, prob in model.support():
        if row[secret.index] != secret.value:
            continue
        mass += prob
        f1 = float(queries[0](np.asarray(row)))
        f2 = float(queries[1](np.asarray(row)))
        density += prob * np.outer(
            laplace_density(grids[0], f1, scales[0]),
            laplace_density(grids[1], f2, scales[1]),
        )
    assert mass > 0
    return density / mass


def max_joint_log_ratio(model, instantiation, queries, scales, grids):
    worst = 0.0
    for pair in instantiation.admissible_pairs(model):
        left = joint_density(model, queries, scales, pair.left, grids)
        right = joint_density(model, queries, scales, pair.right, grids)
        worst = max(worst, float(np.abs(np.log(left) - np.log(right)).max()))
    return worst


@pytest.fixture(scope="module")
def setting():
    model = MarkovChainModel(CHAIN, LENGTH)
    instantiation = entrywise_instantiation(LENGTH, 2, [model])
    queries = (StateFrequencyQuery(1, LENGTH), CountQuery())
    return model, instantiation, queries


@pytest.mark.parametrize("epsilon", [0.5, 1.0])
def test_two_releases_compose_to_2eps(setting, epsilon):
    """Same family, same epsilon, same window => same active quilts =>
    the joint guarantee is 2 * eps (Theorem 4.4)."""
    model, instantiation, queries = setting
    mechanism = MQMExact(FiniteChainFamily([CHAIN]), epsilon, max_window=LENGTH)
    sigma = mechanism.sigma_max(LENGTH)
    scales = tuple(q.lipschitz * sigma for q in queries)
    grids = (
        np.linspace(-4 * scales[0] - 1, 4 * scales[0] + 2, 81),
        np.linspace(-4 * scales[1] - 1, 4 * scales[1] + LENGTH + 1, 81),
    )
    worst = max_joint_log_ratio(model, instantiation, queries, scales, grids)
    assert worst <= 2 * epsilon * (1 + 1e-9)


def test_joint_ratio_can_exceed_single_release_bound(setting):
    """Sanity: the joint leaks more than one release alone (otherwise the
    composition theorem would be vacuous)."""
    model, instantiation, queries = setting
    epsilon = 1.0
    mechanism = MQMExact(FiniteChainFamily([CHAIN]), epsilon, max_window=LENGTH)
    sigma = mechanism.sigma_max(LENGTH)
    scales = tuple(q.lipschitz * sigma for q in queries)
    grids = (
        np.linspace(-4 * scales[0] - 1, 4 * scales[0] + 2, 81),
        np.linspace(-4 * scales[1] - 1, 4 * scales[1] + LENGTH + 1, 81),
    )
    worst = max_joint_log_ratio(model, instantiation, queries, scales, grids)
    assert worst > epsilon  # strictly more than one release's budget


def test_mixed_epsilons_compose_to_k_times_max(setting):
    """eps_1 = 0.4, eps_2 = 1.0 with one quilt configuration => 2 * 1.0."""
    model, instantiation, queries = setting
    eps_small, eps_large = 0.4, 1.0
    base = MQMExact(FiniteChainFamily([CHAIN]), eps_large, max_window=LENGTH)
    sigma_large = base.sigma_max(LENGTH)
    sigma_small = base.with_epsilon(eps_small).sigma_max(LENGTH)
    scales = (
        queries[0].lipschitz * sigma_small,
        queries[1].lipschitz * sigma_large,
    )
    grids = (
        np.linspace(-4 * scales[0] - 1, 4 * scales[0] + 2, 81),
        np.linspace(-4 * scales[1] - 1, 4 * scales[1] + LENGTH + 1, 81),
    )
    worst = max_joint_log_ratio(model, instantiation, queries, scales, grids)
    assert worst <= 2 * eps_large * (1 + 1e-9)
