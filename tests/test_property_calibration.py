"""Property-based calibration tests over randomized chains and alphabets.

Stdlib-``random``-driven (no extra dependencies): each property is checked
across a deterministic sweep of seeded random instances — chains with random
state counts, random transition rows bounded away from zero (so MQMApprox's
mixing hypotheses hold), random family sizes, lengths, and epsilons.

Properties (each a theorem about the mechanisms, not a regression value):

* **Monotonicity** — sigma is non-increasing in epsilon: every quilt score
  ``card / (eps - influence)`` and the trivial ``T / eps`` decrease as the
  privacy budget loosens, and min/max preserve that pointwise.
* **Dominance** — ``MQMApprox`` noise is at least ``MQMExact`` noise on the
  same family: Lemma 4.8 upper-bounds the exact Eq. (5) influence of every
  quilt, and MQMExact searches a superset of quilt extents.
* **Decomposition** — ``sigma_max`` over a set of segment lengths equals the
  max of the per-length sigmas (the invariant that makes per-length sharding
  of the parallel calibrator sound).
"""

from __future__ import annotations

import random

import pytest

from repro.core.mqm_chain import MQMApprox, MQMExact
from repro.distributions.chain_family import FiniteChainFamily
from repro.distributions.markov import MarkovChain

#: Relative/absolute slop for comparisons that are exact in math but travel
#: through float max/min reductions.
TOL = 1e-9

SEEDS = range(10)


def random_chain(rnd: random.Random, n_states: int, min_prob: float = 0.05) -> MarkovChain:
    """A random irreducible aperiodic chain started at stationarity.

    Every transition probability is at least ``min_prob / n_states`` (rows
    are normalized sums of ``min_prob + U(0,1)`` draws), which keeps
    ``pi_min`` and the eigengap positive — the hypotheses of Lemma 4.8.
    """
    rows = []
    for _ in range(n_states):
        row = [min_prob + rnd.random() for _ in range(n_states)]
        total = sum(row)
        rows.append([value / total for value in row])
    return MarkovChain([1.0 / n_states] * n_states, rows).with_stationary_initial()


def random_family(rnd: random.Random) -> FiniteChainFamily:
    n_states = rnd.choice([2, 3, 4])
    members = [random_chain(rnd, n_states) for _ in range(rnd.choice([1, 2]))]
    return FiniteChainFamily(members)


@pytest.mark.parametrize("seed", SEEDS)
def test_sigma_non_increasing_in_epsilon(seed):
    rnd = random.Random(seed)
    family = random_family(rnd)
    length = rnd.choice([20, 33, 48])
    epsilons = sorted(0.2 + 2.8 * rnd.random() for _ in range(4))
    # Fixed search window: the candidate quilt set must not change with
    # epsilon for the pointwise-monotonicity argument to apply to MQMExact.
    exact_sigmas = [
        MQMExact(family, eps, max_window=length).sigma_max(length) for eps in epsilons
    ]
    approx_sigmas = [MQMApprox(family, eps).sigma_max(length) for eps in epsilons]
    for tighter, looser in zip(exact_sigmas, exact_sigmas[1:]):
        assert looser <= tighter + TOL
    for tighter, looser in zip(approx_sigmas, approx_sigmas[1:]):
        assert looser <= tighter + TOL
    assert all(sigma >= 1.0 / epsilons[i] for i, sigma in enumerate(exact_sigmas))


@pytest.mark.parametrize("seed", SEEDS)
def test_approx_noise_dominates_exact(seed):
    rnd = random.Random(seed)
    family = random_family(rnd)
    length = rnd.choice([16, 25, 40])
    eps = 0.3 + 2.0 * rnd.random()
    exact = MQMExact(family, eps, max_window=length).sigma_max(length)
    approx = MQMApprox(family, eps).sigma_max(length)
    assert approx >= exact - TOL


@pytest.mark.parametrize("seed", SEEDS)
def test_sigma_max_over_length_set_is_max_of_per_length(seed):
    rnd = random.Random(seed)
    family = random_family(rnd)
    lengths = sorted({rnd.randint(5, 45) for _ in range(rnd.randint(2, 5))})
    eps = 0.3 + 2.0 * rnd.random()
    window = max(lengths)

    exact = MQMExact(family, eps, max_window=window)
    per_length = [
        MQMExact(family, eps, max_window=window).sigma_max(n) for n in lengths
    ]
    assert exact.sigma_max(lengths) == max(per_length)

    approx = MQMApprox(family, eps)
    assert approx.sigma_max(lengths) == max(
        MQMApprox(family, eps).sigma_max(n) for n in lengths
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_parallel_plan_merge_matches_serial_on_random_chains(seed):
    """The plan/merge machinery (executed inline — pool transport is covered
    by the equivalence suite) reproduces the serial sigma bit-for-bit on
    randomized families and length sets."""
    from repro.core.queries import StateFrequencyQuery
    from repro.parallel import ParallelCalibrator

    rnd = random.Random(seed)
    family = random_family(rnd)
    lengths = sorted({rnd.randint(5, 40) for _ in range(3)})
    eps = 0.3 + 2.0 * rnd.random()
    window = max(lengths)
    total = sum(lengths)

    import numpy as np

    from repro.data.datasets import TimeSeriesDataset

    data = TimeSeriesDataset(
        [np.zeros(n, dtype=int) for n in lengths], family.n_states
    )
    query = StateFrequencyQuery(0, total)
    serial = MQMExact(family, eps, max_window=window).calibrate(query, data)
    parallel = ParallelCalibrator(max_workers=1).calibrate(
        MQMExact(family, eps, max_window=window), query, data
    )
    assert parallel.scale == serial.scale
    assert parallel.details == serial.details
