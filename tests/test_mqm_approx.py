"""Unit tests for MQMApprox (Algorithm 4)."""

import numpy as np
import pytest

from repro.core.mqm_chain import MQMApprox, MQMExact
from repro.core.queries import StateFrequencyQuery
from repro.distributions.chain_family import FiniteChainFamily, IntervalChainFamily
from repro.distributions.markov import MarkovChain
from repro.exceptions import NotApplicableError

STATIONARY = MarkovChain([0.6, 0.4], [[0.8, 0.2], [0.3, 0.7]])


class TestApplicability:
    def test_rejects_periodic_chain(self):
        periodic = MarkovChain([0.5, 0.5], [[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(NotApplicableError):
            MQMApprox(FiniteChainFamily([periodic]), 1.0)

    def test_rejects_reducible_chain(self):
        reducible = MarkovChain([0.5, 0.5], [[1.0, 0.0], [0.0, 1.0]])
        with pytest.raises(NotApplicableError):
            MQMApprox(FiniteChainFamily([reducible]), 1.0)

    def test_accepts_mixing_chain(self):
        mech = MQMApprox(STATIONARY, 1.0)
        assert mech.pi_min == pytest.approx(0.4)


class TestInfluenceBounds:
    def test_running_example_parameters(self):
        """pi_min = 0.2 and g(PP*) = 0.75 for the running-example family."""
        theta1 = MarkovChain([1.0, 0.0], [[0.9, 0.1], [0.4, 0.6]])
        theta2 = MarkovChain([0.9, 0.1], [[0.8, 0.2], [0.3, 0.7]])
        family = FiniteChainFamily([theta1, theta2])
        mech = MQMApprox(family, 1.0, reversible=False)
        assert mech.pi_min == pytest.approx(0.2, abs=1e-9)
        assert mech.gap == pytest.approx(0.75, abs=1e-9)

    def test_lemma_4_8_formula(self):
        mech = MQMApprox(STATIONARY, 1.0)
        a, b = 30, 40
        delta_a = np.exp(-a * mech.gap / 2) / mech.pi_min
        delta_b = np.exp(-b * mech.gap / 2) / mech.pi_min
        expected = np.log((1 + delta_b) / (1 - delta_b)) + 2 * np.log(
            (1 + delta_a) / (1 - delta_a)
        )
        assert mech.two_sided_influence(a, b) == pytest.approx(expected)

    def test_small_extents_are_unusable(self):
        """Below the 2 log(1/pi)/g threshold the bound is infinite."""
        mech = MQMApprox(STATIONARY, 1.0)
        assert mech.right_influence(1) == np.inf

    def test_bound_decreasing_in_extent(self):
        mech = MQMApprox(STATIONARY, 1.0)
        values = np.asarray(mech.right_influence(np.array([10, 20, 40, 80])))
        finite = values[np.isfinite(values)]
        assert all(a > b for a, b in zip(finite, finite[1:]))

    def test_left_is_twice_right(self):
        mech = MQMApprox(STATIONARY, 1.0)
        assert mech.left_influence(25) == pytest.approx(2 * mech.right_influence(25))


class TestSoundness:
    """The approximation must always dominate the exact influence/noise."""

    @pytest.mark.parametrize("p0,p1", [(0.8, 0.7), (0.6, 0.6), (0.9, 0.5)])
    def test_bound_dominates_exact_influence(self, p0, p1):
        from repro.core.mqm_chain import chain_max_influence

        chain = MarkovChain([0.5, 0.5], [[p0, 1 - p0], [1 - p1, p1]]).with_stationary_initial()
        mech = MQMApprox(chain, 1.0)
        for a, b in [(20, 20), (30, 50), (60, 40)]:
            bound = mech.two_sided_influence(a, b)
            exact = chain_max_influence(chain, 80, a, b)
            assert bound >= exact - 1e-9

    @pytest.mark.parametrize("eps", [0.2, 1.0, 5.0])
    def test_sigma_dominates_exact(self, eps):
        chain = STATIONARY.with_stationary_initial()
        family = FiniteChainFamily([chain])
        T = 400
        approx = MQMApprox(family, eps).sigma_max(T)
        exact = MQMExact(family, eps, max_window=min(T, 120)).sigma_max(T)
        assert approx >= exact - 1e-9


class TestFastPath:
    def test_matches_full_search_on_long_chain(self):
        mech = MQMApprox(STATIONARY, 1.0)
        astar = mech.a_star()
        T = 8 * astar + 10
        fast = mech._sigma_middle(T, astar)
        full = mech._sigma_full(T, astar)
        assert fast == pytest.approx(full, rel=1e-9)

    def test_sigma_independent_of_length_when_long(self):
        """Theorem 4.10: noise does not grow with T for long chains."""
        mech = MQMApprox(STATIONARY, 1.0)
        astar = mech.a_star()
        long1 = mech.sigma_max(10 * astar)
        long2 = mech.sigma_max(1_000_000)
        assert long1 == pytest.approx(long2, rel=1e-9)

    def test_theorem_4_10_constant(self):
        """sigma <= C/eps with C = 8 * ceil(log((e^{eps/6}+1)/(e^{eps/6}-1)/pi)/g)."""
        for eps in (0.2, 1.0, 5.0):
            mech = MQMApprox(STATIONARY, eps)
            T = 8 * mech.a_star() + 3
            constant = 4 * mech.a_star()  # = C/2; sigma <= (4a*-2)/(eps/2) <= 8a*/eps
            assert mech.sigma_max(T) <= 2 * constant / eps

    def test_short_chain_uses_trivial_or_better(self):
        mech = MQMApprox(STATIONARY, 1.0)
        assert mech.sigma_max(5) <= 5.0


class TestOptimalQuiltExtent:
    def test_long_chain_extent_bounded(self):
        mech = MQMApprox(STATIONARY, 1.0)
        extent = mech.optimal_quilt_extent(100_000)
        assert extent is not None
        assert 2 <= extent <= 4 * mech.a_star()

    def test_tiny_chain_returns_none(self):
        mech = MQMApprox(STATIONARY, 1.0)
        assert mech.optimal_quilt_extent(1) is None


class TestIntervalFamily:
    def test_closed_form_family_parameters(self):
        family = IntervalChainFamily(0.25)
        mech = MQMApprox(family, 1.0)
        assert mech.pi_min == pytest.approx(0.25)
        assert mech.gap == pytest.approx(1.0)

    def test_narrow_family_less_noise(self):
        wide = MQMApprox(IntervalChainFamily(0.15), 1.0).sigma_max(100)
        narrow = MQMApprox(IntervalChainFamily(0.4), 1.0).sigma_max(100)
        assert narrow <= wide

    def test_epsilon_monotonicity(self):
        family = IntervalChainFamily(0.3)
        scales = []
        for eps in (0.2, 1.0, 5.0):
            mech = MQMApprox(family, eps)
            query = StateFrequencyQuery(1, 100)
            scales.append(mech.noise_scale(query, np.zeros(100, dtype=int)))
        assert scales[0] > scales[1] > scales[2]


class TestScaleDetails:
    def test_details_fields(self):
        mech = MQMApprox(STATIONARY, 1.0)
        query = StateFrequencyQuery(1, 50)
        details = mech.scale_details(query, np.zeros(50, dtype=int))
        assert set(details) == {"sigma_max", "pi_min", "eigengap", "a_star"}
