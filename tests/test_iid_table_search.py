"""Brute-force cross-validation of ``sigma_max_from_iid_tables``.

The edge/interior decomposition (prefix minima, the lb/rb crossing search)
is the subtlest piece of the chain mechanisms, so we verify it against a
direct O(T * |A| * |B|) enumeration on randomized inputs, including infinite
influences and degenerate candidate sets.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mqm_chain import sigma_max_from_iid_tables


def brute_force(length, epsilon, a_values, b_values, e_two, e_left, e_right):
    """Literal per-node minimum over every admissible quilt."""
    best_overall = 0.0
    for t in range(length):
        options = [length / epsilon]
        for i, a in enumerate(a_values):
            if a > t:
                continue
            if e_left[i] < epsilon:
                options.append((length - 1 - t + a) / (epsilon - e_left[i]))
            for j, b in enumerate(b_values):
                if b > length - 1 - t:
                    continue
                if e_two[i, j] < epsilon:
                    options.append((a + b - 1) / (epsilon - e_two[i, j]))
        for j, b in enumerate(b_values):
            if b > length - 1 - t:
                continue
            if e_right[j] < epsilon:
                options.append((t + b) / (epsilon - e_right[j]))
        best_overall = max(best_overall, min(options))
    return best_overall


@st.composite
def table_instances(draw):
    length = draw(st.integers(min_value=1, max_value=48))
    n_a = draw(st.integers(min_value=1, max_value=4))
    n_b = draw(st.integers(min_value=1, max_value=4))
    a_values = np.sort(
        np.asarray(
            draw(
                st.lists(
                    st.integers(min_value=1, max_value=24),
                    min_size=n_a,
                    max_size=n_a,
                    unique=True,
                )
            ),
            dtype=np.int64,
        )
    )
    b_values = np.sort(
        np.asarray(
            draw(
                st.lists(
                    st.integers(min_value=1, max_value=24),
                    min_size=n_b,
                    max_size=n_b,
                    unique=True,
                )
            ),
            dtype=np.int64,
        )
    )
    influence = st.one_of(
        st.floats(min_value=0.0, max_value=2.0), st.just(float("inf"))
    )
    e_left = np.asarray([draw(influence) for _ in a_values])
    e_right = np.asarray([draw(influence) for _ in b_values])
    # Two-sided influence >= each one-sided part keeps the instance
    # physically meaningful, but the search must not rely on it — mix in
    # arbitrary values too.
    if draw(st.booleans()):
        e_two = e_left[:, None] + e_right[None, :]
    else:
        e_two = np.asarray(
            [[draw(influence) for _ in b_values] for _ in a_values]
        )
    epsilon = draw(st.floats(min_value=0.3, max_value=3.0))
    return length, epsilon, a_values, b_values, e_two, e_left, e_right


class TestAgainstBruteForce:
    @settings(max_examples=200, deadline=None)
    @given(table_instances())
    def test_matches_enumeration(self, instance):
        length, epsilon, a_values, b_values, e_two, e_left, e_right = instance
        fast = sigma_max_from_iid_tables(
            length, epsilon, a_values, b_values, e_two, e_left, e_right
        )
        slow = brute_force(
            length, epsilon, a_values, b_values, e_two, e_left, e_right
        )
        assert fast == pytest.approx(slow, rel=1e-9, abs=1e-12)

    def test_long_chain_interior_crossing(self):
        """A handcrafted case where the interior crossing matters: cheap
        left influences, expensive right ones."""
        a_values = np.array([2, 8], dtype=np.int64)
        b_values = np.array([2, 8], dtype=np.int64)
        e_left = np.array([0.1, 0.05])
        e_right = np.array([0.9, 0.6])
        e_two = e_left[:, None] + e_right[None, :]
        for length in (20, 100, 1000, 10_000):
            fast = sigma_max_from_iid_tables(
                length, 1.0, a_values, b_values, e_two, e_left, e_right
            )
            slow = brute_force(length, 1.0, a_values, b_values, e_two, e_left, e_right)
            assert fast == pytest.approx(slow, rel=1e-9)

    def test_scales_to_million_nodes(self):
        """The fast path must not iterate a million nodes."""
        a_values = np.arange(1, 65, dtype=np.int64)
        e_left = 2.0 / np.sqrt(a_values)
        e_right = 1.0 / np.sqrt(a_values)
        e_two = e_left[:, None] + e_right[None, :]
        sigma = sigma_max_from_iid_tables(
            1_000_000, 1.0, a_values, a_values, e_two, e_left, e_right
        )
        assert np.isfinite(sigma)
        # Sanity: at least the best interior two-sided score.
        assert sigma > 0
