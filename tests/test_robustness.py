"""Unit tests for the close-adversary robustness bound (Theorem 2.4)."""

import numpy as np
import pytest

from repro.core.framework import Secret
from repro.core.models import TabularDataModel
from repro.core.robustness import (
    adversary_distance,
    conditional_distance,
    effective_epsilon,
    unconditional_distance,
)
from repro.exceptions import ValidationError


def model_over_three(probs):
    """Belief over three databases D1, D2, D3, encoded as one record."""
    return TabularDataModel([(0,), (1,), (2,)], probs)


@pytest.fixture
def paper_beliefs():
    """The Section 2.3 worked example."""
    theta = model_over_three([0.9, 0.05, 0.05])
    theta_tilde = model_over_three([0.01, 0.95, 0.04])
    return theta, theta_tilde


class TestPaperExample:
    def test_unconditional_distance_log90(self, paper_beliefs):
        theta, theta_tilde = paper_beliefs
        assert unconditional_distance(theta_tilde, theta) == pytest.approx(np.log(90.0))

    def test_conditional_distance_exceeds_unconditional(self, paper_beliefs):
        """Conditioning on 'not D3' grows the distance beyond log 90.

        The paper reports log 91.0962, which comes from rounding the
        conditional masses to four decimals (0.9474 / 0.0104); the exact
        ratio is (0.9/0.95) / (0.01/0.96) = 90.947.
        """
        theta, theta_tilde = paper_beliefs
        cond_theta = TabularDataModel([(0,), (1,)], np.array([0.9, 0.05]) / 0.95)
        cond_tilde = TabularDataModel([(0,), (1,)], np.array([0.01, 0.95]) / 0.96)
        distance = unconditional_distance(cond_tilde, cond_theta)
        exact = np.log((0.9 / 0.95) / (0.01 / 0.96))
        assert distance == pytest.approx(exact, abs=1e-10)
        assert distance == pytest.approx(np.log(91.0962), abs=2e-3)
        assert distance > unconditional_distance(theta_tilde, theta)


class TestConditionalDistance:
    def test_zero_for_identical_models(self):
        model = model_over_three([0.5, 0.3, 0.2])
        secrets = [Secret(0, v) for v in range(3)]
        assert conditional_distance(model, model, secrets) == pytest.approx(0.0)

    def test_skips_zero_probability_secrets(self):
        a = model_over_three([1.0, 0.0, 0.0])
        b = model_over_three([0.9, 0.1, 0.0])
        secrets = [Secret(0, v) for v in range(3)]
        # Secret value 1 has zero probability under a; value 2 under both.
        distance = conditional_distance(a, b, secrets)
        assert np.isfinite(distance)

    def test_infinite_on_support_mismatch(self):
        a = TabularDataModel([(0, 0), (0, 1)], [0.5, 0.5])
        b = TabularDataModel([(0, 0)], [1.0])
        secrets = [Secret(0, 0)]
        assert conditional_distance(a, b, secrets) == float("inf")


class TestAdversaryDistance:
    def test_in_class_belief_has_zero_delta(self):
        theta = model_over_three([0.5, 0.25, 0.25])
        secrets = [Secret(0, v) for v in range(3)]
        assert adversary_distance(theta, [theta], secrets) == pytest.approx(0.0)

    def test_takes_infimum_over_class(self):
        tilde = model_over_three([0.5, 0.3, 0.2])
        far = model_over_three([0.1, 0.1, 0.8])
        near = model_over_three([0.45, 0.35, 0.2])
        secrets = [Secret(0, v) for v in range(3)]
        delta_near = adversary_distance(tilde, [near], secrets)
        delta_both = adversary_distance(tilde, [far, near], secrets)
        assert delta_both == pytest.approx(delta_near)

    def test_requires_nonempty_family(self):
        tilde = model_over_three([0.5, 0.3, 0.2])
        with pytest.raises(ValidationError):
            adversary_distance(tilde, [], [Secret(0, 0)])


class TestEffectiveEpsilon:
    def test_formula(self):
        assert effective_epsilon(1.0, 0.5) == pytest.approx(2.0)

    def test_zero_delta_is_identity(self):
        assert effective_epsilon(0.7, 0.0) == pytest.approx(0.7)

    def test_validation(self):
        with pytest.raises(ValidationError):
            effective_epsilon(0.0, 0.1)
        with pytest.raises(ValidationError):
            effective_epsilon(1.0, -0.1)
