"""The stdlib HTTP server's refusal paths, observed from a real socket.

The regression these tests pin down: an early refusal (oversized body,
oversized headers, bad request line) used to write its response and close
while the client's unread request bytes were still pending — the kernel
then RSTs the connection and the client sees a broken pipe instead of the
413/431 the server meant to send.  The fix (``_refuse``) drains the
response and discards the remaining request before closing, so every
refusal below must be *readable by the client*, byte for byte.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time

import pytest

from repro.service import create_app
from repro.service.server import (
    _MAX_BODY_BYTES,
    _MAX_HEADER_BYTES,
    serve_async,
)


@pytest.fixture()
def live_server():
    app = create_app()
    ports: list[int] = []
    stop = threading.Event()

    def run() -> None:
        async def main() -> None:
            server = await serve_async(app, "127.0.0.1", 0, header_timeout=5.0)
            ports.append(server.sockets[0].getsockname()[1])
            async with server:
                while not stop.is_set():
                    await asyncio.sleep(0.02)

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    deadline = time.monotonic() + 10
    while not ports and time.monotonic() < deadline:
        time.sleep(0.01)
    assert ports, "server never came up"
    yield ports[0]
    stop.set()
    thread.join(timeout=10)
    app.service.close()


def _raw_request(port: int, payload: bytes, *, timeout: float = 10.0) -> bytes:
    """Send raw bytes, read the full response (until server close)."""
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as sock:
        sock.sendall(payload)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    return b"".join(chunks)


def _status_and_body(response: bytes) -> "tuple[int, dict]":
    head, _, body = response.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, json.loads(body)


def test_oversized_body_receives_413(live_server):
    """The client must actually READ the 413 — not a reset connection."""
    content_length = _MAX_BODY_BYTES + 1
    head = (
        f"POST /tenants/acme/release HTTP/1.1\r\n"
        f"host: localhost\r\ncontent-length: {content_length}\r\n\r\n"
    ).encode()
    oversized = head + b"x" * content_length
    response = _raw_request(live_server, oversized)
    status, body = _status_and_body(response)
    assert status == 413
    assert body == {"error": "BodyTooLarge"}


def test_oversized_headers_receive_431(live_server):
    filler = b"x-filler: " + b"f" * (_MAX_HEADER_BYTES + 1024) + b"\r\n"
    request = b"GET /health HTTP/1.1\r\nhost: localhost\r\n" + filler + b"\r\n"
    response = _raw_request(live_server, request)
    status, body = _status_and_body(response)
    assert status == 431
    assert body == {"error": "HeadersTooLarge"}


def test_bad_request_line_receives_400(live_server):
    response = _raw_request(live_server, b"NONSENSE\r\n\r\n")
    status, body = _status_and_body(response)
    assert status == 400
    assert body == {"error": "BadRequestLine"}


def test_bad_content_length_receives_400(live_server):
    request = (
        b"POST /tenants/a HTTP/1.1\r\nhost: x\r\n"
        b"content-length: banana\r\n\r\n"
    )
    status, body = _status_and_body(_raw_request(live_server, request))
    assert status == 400
    assert body == {"error": "BadContentLength"}


def test_client_hangup_mid_headers_is_quiet(live_server):
    # No response owed; the server must simply not wedge.
    with socket.create_connection(("127.0.0.1", live_server), timeout=5):
        pass  # connect and immediately hang up
    # The server still answers the next request.
    ok = _raw_request(live_server, b"GET /health HTTP/1.1\r\nhost: x\r\n\r\n")
    status, body = _status_and_body(ok)
    assert status == 200
    assert body["status"] == "ok"


def test_normal_request_still_round_trips(live_server):
    request = b"GET /workloads HTTP/1.1\r\nhost: x\r\n\r\n"
    status, body = _status_and_body(_raw_request(live_server, request))
    assert status == 200
    assert {w["name"] for w in body["workloads"]} == {
        "hub-gaussian",
        "hub-laplace",
    }
