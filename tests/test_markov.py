"""Unit tests for the MarkovChain substrate."""

import numpy as np
import pytest

from repro.distributions.markov import MarkovChain
from repro.exceptions import ValidationError


@pytest.fixture
def running_theta1():
    """theta_1 of the Section 4.4 running example."""
    return MarkovChain([1.0, 0.0], [[0.9, 0.1], [0.4, 0.6]])


@pytest.fixture
def running_theta2():
    """theta_2 of the Section 4.4 running example."""
    return MarkovChain([0.9, 0.1], [[0.8, 0.2], [0.3, 0.7]])


class TestConstruction:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            MarkovChain([1.0], [[0.5, 0.5], [0.5, 0.5]])

    def test_label_count_checked(self):
        with pytest.raises(ValidationError):
            MarkovChain([0.5, 0.5], np.eye(2), state_labels=["only-one"])

    def test_with_initial(self, running_theta1):
        other = running_theta1.with_initial([0.5, 0.5])
        np.testing.assert_allclose(other.initial, [0.5, 0.5])
        np.testing.assert_allclose(other.transition, running_theta1.transition)


class TestPowersAndMarginals:
    def test_power_zero_is_identity(self, running_theta1):
        np.testing.assert_allclose(running_theta1.power(0), np.eye(2))

    def test_power_consistency(self, running_theta1):
        p = running_theta1.transition
        np.testing.assert_allclose(running_theta1.power(3), p @ p @ p)

    def test_powers_row_stochastic(self, running_theta2):
        for n in range(1, 12):
            np.testing.assert_allclose(running_theta2.power(n).sum(axis=1), [1.0, 1.0])

    def test_marginal_zero_is_initial(self, running_theta1):
        np.testing.assert_allclose(running_theta1.marginal(0), running_theta1.initial)

    def test_marginal_recursion(self, running_theta2):
        expected = running_theta2.initial @ running_theta2.power(5)
        np.testing.assert_allclose(running_theta2.marginal(5), expected)

    def test_negative_indices_rejected(self, running_theta1):
        with pytest.raises(ValidationError):
            running_theta1.power(-1)
        with pytest.raises(ValidationError):
            running_theta1.marginal(-2)


class TestStationary:
    def test_running_example_stationaries(self, running_theta1, running_theta2):
        """The paper states pi(theta1) = [0.8, 0.2] and pi(theta2) = [0.6, 0.4]."""
        np.testing.assert_allclose(running_theta1.stationary(), [0.8, 0.2], atol=1e-9)
        np.testing.assert_allclose(running_theta2.stationary(), [0.6, 0.4], atol=1e-9)

    def test_fixed_point(self, running_theta2):
        pi = running_theta2.stationary()
        np.testing.assert_allclose(pi @ running_theta2.transition, pi, atol=1e-10)

    def test_pi_min_running_example(self, running_theta1, running_theta2):
        assert running_theta1.pi_min() == pytest.approx(0.2, abs=1e-9)
        assert running_theta2.pi_min() == pytest.approx(0.4, abs=1e-9)

    def test_with_stationary_initial(self, running_theta1):
        chain = running_theta1.with_stationary_initial()
        np.testing.assert_allclose(chain.marginal(7), chain.initial, atol=1e-10)


class TestTimeReversal:
    def test_two_state_chains_self_reversal(self, running_theta1):
        """Every two-state chain is reversible, so P* == P."""
        np.testing.assert_allclose(
            running_theta1.time_reversal().transition, running_theta1.transition, atol=1e-9
        )

    def test_reversal_preserves_stationary(self):
        chain = MarkovChain(
            [1 / 3, 1 / 3, 1 / 3],
            [[0.1, 0.6, 0.3], [0.2, 0.3, 0.5], [0.5, 0.2, 0.3]],
        )
        reversed_chain = chain.time_reversal()
        np.testing.assert_allclose(
            reversed_chain.stationary(), chain.stationary(), atol=1e-8
        )

    def test_double_reversal_is_identity(self):
        chain = MarkovChain(
            [0.3, 0.3, 0.4],
            [[0.2, 0.5, 0.3], [0.4, 0.1, 0.5], [0.3, 0.3, 0.4]],
        )
        twice = chain.time_reversal().time_reversal()
        np.testing.assert_allclose(twice.transition, chain.transition, atol=1e-8)


class TestStructure:
    def test_reversibility_detection(self, running_theta1):
        assert running_theta1.is_reversible()

    def test_non_reversible_three_cycle(self):
        cycle = MarkovChain(
            [1 / 3, 1 / 3, 1 / 3],
            [[0.1, 0.8, 0.1], [0.1, 0.1, 0.8], [0.8, 0.1, 0.1]],
        )
        assert not cycle.is_reversible()

    def test_irreducibility(self, running_theta1):
        assert running_theta1.is_irreducible()
        reducible = MarkovChain([0.5, 0.5], [[1.0, 0.0], [0.0, 1.0]])
        assert not reducible.is_irreducible()

    def test_aperiodicity(self, running_theta1):
        assert running_theta1.is_aperiodic()
        periodic = MarkovChain([0.5, 0.5], [[0.0, 1.0], [1.0, 0.0]])
        assert not periodic.is_aperiodic()


class TestEigengap:
    def test_running_example_general_gap(self, running_theta1, running_theta2):
        """The paper computes g = 0.75 for both chains via P P*."""
        assert running_theta1.eigengap(reversible=False) == pytest.approx(0.75, abs=1e-9)
        assert running_theta2.eigengap(reversible=False) == pytest.approx(0.75, abs=1e-9)

    def test_reversible_gap_two_state(self, running_theta1):
        """lambda_2 = p0 + p1 - 1 = 0.5 so the reversible gap is 2*(1-0.5)=1."""
        assert running_theta1.eigengap(reversible=True) == pytest.approx(1.0, abs=1e-9)

    def test_gap_zero_for_reducible(self):
        reducible = MarkovChain([0.5, 0.5], [[1.0, 0.0], [0.0, 1.0]])
        assert reducible.eigengap() == 0.0

    def test_gap_zero_for_periodic(self):
        periodic = MarkovChain([0.5, 0.5], [[0.0, 1.0], [1.0, 0.0]])
        assert periodic.eigengap() == 0.0

    def test_mixing_scale_finite_for_mixing_chain(self, running_theta2):
        assert np.isfinite(running_theta2.mixing_scale())


class TestSampling:
    def test_length_and_range(self, running_theta2):
        path = running_theta2.sample(500, rng=3)
        assert path.size == 500
        assert set(np.unique(path)) <= {0, 1}

    def test_deterministic_under_seed(self, running_theta2):
        a = running_theta2.sample(50, rng=11)
        b = running_theta2.sample(50, rng=11)
        np.testing.assert_array_equal(a, b)

    def test_zero_length(self, running_theta2):
        assert running_theta2.sample(0, rng=1).size == 0

    def test_degenerate_initial_fixes_first_state(self, running_theta1):
        path = running_theta1.sample(10, rng=5)
        assert path[0] == 0

    def test_empirical_frequencies_approach_stationary(self, running_theta2):
        chain = running_theta2.with_stationary_initial()
        path = chain.sample(60_000, rng=0)
        freq = np.bincount(path, minlength=2) / path.size
        np.testing.assert_allclose(freq, chain.stationary(), atol=0.02)

    def test_sample_segments(self, running_theta2):
        segments = running_theta2.sample_segments([5, 10, 1], rng=2)
        assert [s.size for s in segments] == [5, 10, 1]


class TestEstimation:
    def test_recovers_transition_matrix(self, running_theta2):
        chain = running_theta2.with_stationary_initial()
        segments = chain.sample_segments([30_000, 30_000], rng=4)
        estimated = MarkovChain.from_segments(segments, 2)
        np.testing.assert_allclose(estimated.transition, chain.transition, atol=0.02)

    def test_smoothing_fills_zeros(self):
        segments = [np.zeros(100, dtype=np.int64)]  # never leaves state 0
        estimated = MarkovChain.from_segments(segments, 2, smoothing=0.5)
        assert estimated.transition.min() > 0

    def test_empirical_initial(self):
        segments = [np.array([1, 0, 0]), np.array([1, 1])]
        estimated = MarkovChain.from_segments(
            segments, 2, smoothing=1.0, initial="empirical"
        )
        np.testing.assert_allclose(estimated.initial, [0.0, 1.0])

    def test_uniform_initial(self):
        segments = [np.array([0, 1, 0])]
        estimated = MarkovChain.from_segments(segments, 2, smoothing=1.0, initial="uniform")
        np.testing.assert_allclose(estimated.initial, [0.5, 0.5])

    def test_rejects_bad_initial_mode(self):
        with pytest.raises(ValidationError):
            MarkovChain.from_segments([np.array([0])], 2, initial="bogus")

    def test_rejects_negative_smoothing(self):
        with pytest.raises(ValidationError):
            MarkovChain.from_segments([np.array([0])], 2, smoothing=-1.0)
