"""Unit tests for dataset containers and generators."""

import numpy as np
import pytest

from repro.data.activity import (
    ACTIVITY_STATES,
    default_cohorts,
    generate_cohort,
    generate_participant,
    generate_study,
)
from repro.data.datasets import Participant, StudyGroup, TimeSeriesDataset
from repro.data.estimation import empirical_chain
from repro.data.power import default_power_chain, generate_power_dataset
from repro.data.synthetic import sample_binary_dataset
from repro.distributions.chain_family import IntervalChainFamily
from repro.exceptions import ValidationError


class TestTimeSeriesDataset:
    def test_basic_properties(self):
        data = TimeSeriesDataset([np.array([0, 1, 1]), np.array([1, 0])], 2)
        assert data.n_observations == 5
        assert data.segment_lengths == (3, 2)
        assert data.longest_segment == 3
        np.testing.assert_array_equal(data.concatenated, [0, 1, 1, 1, 0])

    def test_relative_frequencies(self):
        data = TimeSeriesDataset([np.array([0, 1, 1, 2])], 3)
        np.testing.assert_allclose(data.relative_frequencies(), [0.25, 0.5, 0.25])

    def test_empty_segments_dropped(self):
        data = TimeSeriesDataset([np.array([0]), np.array([], dtype=int)], 2)
        assert data.segment_lengths == (1,)

    def test_all_empty_rejected(self):
        with pytest.raises(ValidationError):
            TimeSeriesDataset([np.array([], dtype=int)], 2)

    def test_out_of_range_states_rejected(self):
        with pytest.raises(ValidationError):
            TimeSeriesDataset([np.array([0, 5])], 2)

    def test_from_timestamps_splits_on_gaps(self):
        values = np.array([0, 1, 0, 1, 1])
        times = np.array([0.0, 12.0, 24.0, 700.0, 712.0])
        data = TimeSeriesDataset.from_timestamps(
            values, times, 2, gap_threshold=600.0
        )
        assert data.segment_lengths == (3, 2)

    def test_from_timestamps_sorts(self):
        values = np.array([1, 0])
        times = np.array([10.0, 0.0])
        data = TimeSeriesDataset.from_timestamps(values, times, 2, gap_threshold=60.0)
        np.testing.assert_array_equal(data.concatenated, [0, 1])

    def test_merge(self):
        a = TimeSeriesDataset([np.array([0])], 2)
        b = TimeSeriesDataset([np.array([1, 1])], 2)
        merged = a.merged_with(b)
        assert merged.n_observations == 3

    def test_merge_rejects_state_mismatch(self):
        a = TimeSeriesDataset([np.array([0])], 2)
        b = TimeSeriesDataset([np.array([2])], 3)
        with pytest.raises(ValidationError):
            a.merged_with(b)


class TestStudyGroup:
    def make_group(self):
        participants = [
            Participant("p1", TimeSeriesDataset([np.array([0, 1])], 2)),
            Participant("p2", TimeSeriesDataset([np.array([1, 1, 1])], 2)),
        ]
        return StudyGroup("test", participants)

    def test_pooled_dataset(self):
        group = self.make_group()
        pooled = group.pooled_dataset()
        assert pooled.n_observations == 5
        assert pooled.segment_lengths == (2, 3)

    def test_participant_sizes(self):
        assert self.make_group().participant_sizes() == [2, 3]

    def test_rejects_empty_group(self):
        with pytest.raises(ValidationError):
            StudyGroup("empty", [])


class TestSyntheticData:
    def test_shapes_and_interval(self):
        family = IntervalChainFamily(0.3)
        data, theta = sample_binary_dataset(family, 100, rng=0)
        assert data.n_observations == 100
        assert 0.3 <= theta.transition[0, 0] <= 0.7

    def test_deterministic_with_seed(self):
        family = IntervalChainFamily(0.3)
        a, _ = sample_binary_dataset(family, 50, rng=5)
        b, _ = sample_binary_dataset(family, 50, rng=5)
        np.testing.assert_array_equal(a.concatenated, b.concatenated)


class TestActivityData:
    def test_default_cohort_shapes(self):
        profiles = default_cohorts()
        assert [p.name for p in profiles] == ["cyclist", "older_woman", "overweight_woman"]
        assert [p.n_participants for p in profiles] == [40, 16, 36]

    def test_cohort_stationary_profiles(self):
        """Cyclists most active; overweight women most sedentary (Fig 4)."""
        by_name = {p.name: p.chain().stationary() for p in default_cohorts()}
        active = ACTIVITY_STATES.index("active")
        sedentary = ACTIVITY_STATES.index("sedentary")
        assert by_name["cyclist"][active] > by_name["older_woman"][active]
        assert by_name["cyclist"][active] > by_name["overweight_woman"][active]
        assert by_name["overweight_woman"][sedentary] > by_name["cyclist"][sedentary]
        assert by_name["overweight_woman"][sedentary] > by_name["older_woman"][sedentary]

    def test_participant_generation(self):
        profile = default_cohorts()[0]
        participant = generate_participant(profile, "c-1", rng=0)
        assert participant.dataset.n_states == 4
        assert participant.dataset.n_observations >= 200
        assert len(participant.dataset.segments) >= 1

    def test_cohort_generation_deterministic(self):
        profile = default_cohorts()[1]
        g1 = generate_cohort(profile, rng=3)
        g2 = generate_cohort(profile, rng=3)
        assert g1.n_participants == g2.n_participants == 16
        np.testing.assert_array_equal(
            g1.participants[0].dataset.concatenated,
            g2.participants[0].dataset.concatenated,
        )

    def test_scaled_study(self):
        groups = generate_study(rng=0, scale=0.1)
        assert len(groups) == 3
        assert groups[0].n_participants == 4  # 40 * 0.1
        assert all(g.n_states == 4 for g in groups)


class TestPowerData:
    def test_chain_properties(self):
        chain = default_power_chain()
        assert chain.n_states == 51
        assert chain.is_irreducible()
        assert chain.is_aperiodic()
        assert chain.eigengap() > 0
        # Heavy-tailed occupancy: baseload dominates, peak states are rare.
        pi = chain.stationary()
        assert pi[0] > 20 * pi[-1]
        assert chain.pi_min() > 1e-7

    def test_dataset_generation(self):
        data, chain = generate_power_dataset(5000, rng=0)
        assert data.n_observations == 5000
        assert len(data.segments) == 1
        assert data.concatenated.max() < 51

    def test_small_state_space_variant(self):
        chain = default_power_chain(n_states=11)
        assert chain.n_states == 11
        assert chain.is_irreducible()


class TestEstimation:
    def test_empirical_chain_recovers_generator(self):
        chain = default_power_chain(n_states=5)
        data, _ = generate_power_dataset(200_000, rng=1, chain=chain)
        estimated = empirical_chain(data, smoothing=0.1)
        np.testing.assert_allclose(estimated.transition, chain.transition, atol=0.03)

    def test_smoothed_chain_is_mixing(self):
        data = TimeSeriesDataset([np.array([0, 0, 0, 1, 0])], 3)  # state 2 unseen
        estimated = empirical_chain(data, smoothing=0.5)
        assert estimated.is_irreducible()
        assert estimated.is_aperiodic()

    def test_study_group_pooling(self):
        profile = default_cohorts()[0]
        group = generate_cohort(
            type(profile)(
                name="mini",
                n_participants=3,
                transition=profile.transition,
                mean_observations=500,
                mean_segments=2,
            ),
            rng=0,
        )
        estimated = empirical_chain(group, smoothing=0.5)
        assert estimated.n_states == 4
        np.testing.assert_allclose(estimated.initial @ estimated.transition, estimated.initial, atol=1e-8)
