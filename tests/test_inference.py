"""Equivalence suite for the variable-elimination engine.

Every inference result the engine produces is checked against the
brute-force enumeration oracle (``enumerate_joint``) wherever the oracle is
feasible, to ``rtol=1e-12``; beyond the oracle's cap the engine is checked
against closed-form chain quantities and the chain-specialized Algorithm 3.
"""

import pickle

import numpy as np
import pytest

from repro.core.markov_quilt import MarkovQuiltMechanism, max_influence
from repro.core.mqm_chain import MQMExact, chain_max_influence
from repro.distributions.bayesnet import MAX_JOINT_SIZE, DiscreteBayesianNetwork
from repro.distributions.chain_family import FiniteChainFamily
from repro.distributions.markov import MarkovChain
from repro.exceptions import EnumerationError, ValidationError
from repro.inference import InferenceEngine, engine_for
from repro.inference.factor import Factor, _einsum, contract

INITIAL = np.array([0.6, 0.4])
TRANSITION = np.array([[0.85, 0.15], [0.2, 0.8]])


# ----------------------------------------------------------------------
# Network builders
# ----------------------------------------------------------------------
def random_network(
    seed: int, n_nodes: int, *, max_parents: int = 3, max_states: int = 3
) -> DiscreteBayesianNetwork:
    """A random DAG: chains, trees, v-structures, and disconnected
    components all arise from the random parent draws."""
    rng = np.random.default_rng(seed)
    net = DiscreteBayesianNetwork()
    names = [f"N{i}" for i in range(n_nodes)]
    for i, name in enumerate(names):
        k = int(rng.integers(1, max_states + 1))
        n_parents = int(rng.integers(0, min(i, max_parents) + 1))
        parents = (
            [str(p) for p in rng.choice(names[:i], size=n_parents, replace=False)]
            if n_parents
            else []
        )
        shape = tuple(net.n_states(p) for p in parents) + (k,)
        table = rng.random(shape) + 0.05
        table /= table.sum(axis=-1, keepdims=True)
        net.add_node(name, k, parents=parents, cpd=table)
    return net


def v_structure_network() -> DiscreteBayesianNetwork:
    """A -> C <- B: the collider whose moralization marries A and B."""
    net = DiscreteBayesianNetwork()
    net.add_node("A", 2, cpd=[0.3, 0.7])
    net.add_node("B", 3, cpd=[0.2, 0.5, 0.3])
    cpd = np.array(
        [
            [[0.9, 0.1], [0.6, 0.4], [0.5, 0.5]],
            [[0.2, 0.8], [0.3, 0.7], [0.25, 0.75]],
        ]
    ).transpose(0, 1, 2)
    net.add_node("C", 2, parents=["A", "B"], cpd=cpd)
    return net


def disconnected_network() -> DiscreteBayesianNetwork:
    """Two independent components (one a chain, one a lone node)."""
    net = DiscreteBayesianNetwork()
    net.add_node("X1", 2, cpd=[0.6, 0.4])
    net.add_node("X2", 2, parents=["X1"], cpd=[[0.9, 0.1], [0.3, 0.7]])
    net.add_node("Y", 3, cpd=[0.5, 0.25, 0.25])
    return net


def oracle_marginal(net: DiscreteBayesianNetwork, node: str) -> np.ndarray:
    assignments, probs = net.enumerate_joint()
    index = {n: i for i, n in enumerate(net.nodes)}[node]
    out = np.zeros(net.n_states(node))
    for assignment, prob in zip(assignments, probs):
        out[assignment[index]] += prob
    return out


def oracle_conditional(net, targets, given):
    """The seed's enumeration-based conditional table, verbatim."""
    assignments, probs = net.enumerate_joint()
    index = {n: i for i, n in enumerate(net.nodes)}
    target_idx = [index[t] for t in targets]
    table: dict = {}
    total = 0.0
    for assignment, prob in zip(assignments, probs):
        if any(assignment[index[g]] != v for g, v in given.items()):
            continue
        total += prob
        key = tuple(assignment[i] for i in target_idx)
        table[key] = table.get(key, 0.0) + prob
    if total <= 0:
        raise ValidationError(f"conditioning event {dict(given)!r} has zero probability")
    return {key: value / total for key, value in table.items()}


# ----------------------------------------------------------------------
# Factor primitives
# ----------------------------------------------------------------------
class TestFactor:
    def test_restrict_slices_named_axis(self):
        factor = Factor(("A", "B"), np.arange(6.0).reshape(2, 3))
        restricted = factor.restrict("B", 2)
        assert restricted.variables == ("A",)
        np.testing.assert_allclose(restricted.table, [2.0, 5.0])

    def test_table_rank_must_match_variables(self):
        with pytest.raises(ValidationError):
            Factor(("A",), np.zeros((2, 2)))

    def test_duplicate_variables_rejected(self):
        with pytest.raises(ValidationError):
            Factor(("A", "A"), np.zeros((2, 2)))

    def test_contract_unknown_keep_variable(self):
        with pytest.raises(ValidationError):
            contract([Factor(("A",), np.array([0.5, 0.5]))], ("B",))

    def test_contract_matches_manual_product(self):
        a = Factor(("A",), np.array([0.25, 0.75]))
        b = Factor(("A", "B"), np.array([[0.9, 0.1], [0.4, 0.6]]))
        out = contract([a, b], ("B",))
        np.testing.assert_allclose(out.table, a.table @ b.table)

    def test_contract_folds_long_products(self):
        """More operands than one einsum call accepts: fold in chunks."""
        n = 60
        factors = [Factor((f"V{i}", f"V{i+1}"), np.full((2, 2), 0.5)) for i in range(n)]
        out = contract(factors, (f"V{n}",))
        # Each [[.5,.5],[.5,.5]] step preserves column sums of 1, so the
        # fully-summed chain is exactly 1 at every terminal value.
        np.testing.assert_allclose(out.table, np.ones(2))

    def test_einsum_label_limit_guard(self):
        factors = [Factor((f"V{i}",), np.ones(2)) for i in range(53)]
        with pytest.raises(EnumerationError):
            _einsum(factors, ())


# ----------------------------------------------------------------------
# Engine versus the enumeration oracle
# ----------------------------------------------------------------------
class TestEngineEquivalence:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_dag_marginals(self, seed):
        net = random_network(seed, 2 + seed % 7)
        engine = engine_for(net)
        for node in net.nodes:
            np.testing.assert_allclose(
                engine.marginal_of(node),
                oracle_marginal(net, node),
                rtol=1e-12,
                atol=1e-15,
            )

    @pytest.mark.parametrize("seed", range(12))
    def test_random_dag_conditional_tables(self, seed):
        rng = np.random.default_rng(1000 + seed)
        net = random_network(seed, 3 + seed % 6)
        nodes = list(net.nodes)
        targets = [n for n in nodes if rng.random() < 0.5][:3] or [nodes[0]]
        evidence_pool = [n for n in nodes if n not in targets]
        given = {
            n: int(rng.integers(0, net.n_states(n)))
            for n in evidence_pool
            if rng.random() < 0.4
        }
        try:
            expected = oracle_conditional(net, targets, given)
        except ValidationError:
            with pytest.raises(ValidationError):
                net.conditional_table(targets, given)
            return
        actual = net.conditional_table(targets, given)
        assert set(actual) == set(expected)
        for key, value in expected.items():
            np.testing.assert_allclose(actual[key], value, rtol=1e-12, atol=1e-15)

    @pytest.mark.parametrize(
        "net_builder",
        [
            lambda: DiscreteBayesianNetwork.chain(INITIAL, TRANSITION, 5),
            v_structure_network,
            disconnected_network,
        ],
        ids=["chain", "v-structure", "disconnected"],
    )
    def test_structured_networks(self, net_builder):
        net = net_builder()
        engine = engine_for(net)
        for node in net.nodes:
            np.testing.assert_allclose(
                engine.marginal_of(node), oracle_marginal(net, node), rtol=1e-12
            )
        targets = [net.nodes[0]]
        given = {net.nodes[-1]: 0}
        expected = oracle_conditional(net, targets, given)
        actual = net.conditional_table(targets, given)
        for key, value in expected.items():
            np.testing.assert_allclose(actual[key], value, rtol=1e-12)

    def test_batched_conditional_tables_match_per_value(self):
        net = random_network(7, 6)
        engine = engine_for(net)
        node = net.nodes[-1]
        targets = tuple(net.nodes[:2])
        tensor = engine.conditional_tables(targets, node)
        marginal = engine.marginal_of(node)
        assert tensor.shape == (net.n_states(node),) + tuple(
            net.n_states(t) for t in targets
        )
        for value in range(net.n_states(node)):
            if marginal[value] <= 1e-12:
                assert np.isnan(tensor[value]).all()
                continue
            table = net.conditional_table(list(targets), {node: value})
            for key, prob in table.items():
                np.testing.assert_allclose(tensor[(value,) + key], prob, rtol=1e-12)

    def test_conditional_table_with_pinned_target(self):
        """Targets appearing in the evidence stay supported (legacy shape)."""
        net = DiscreteBayesianNetwork.chain(INITIAL, TRANSITION, 4)
        expected = oracle_conditional(net, ["X1", "X3"], {"X3": 1})
        actual = net.conditional_table(["X1", "X3"], {"X3": 1})
        assert set(actual) == set(expected)
        for key, value in expected.items():
            np.testing.assert_allclose(actual[key], value, rtol=1e-12)

    def test_conditional_tables_rejects_target_node_overlap(self):
        net = disconnected_network()
        with pytest.raises(ValidationError):
            engine_for(net).conditional_tables(("X1",), "X1")

    def test_unknown_node_rejected(self):
        net = disconnected_network()
        with pytest.raises(ValidationError):
            engine_for(net).marginal_of("nope")


class TestZeroProbabilityEvidenceParity:
    """The engine raises the same error, with the same message shape, as
    the enumeration oracle for impossible conditioning events."""

    @pytest.fixture
    def deterministic_net(self):
        net = DiscreteBayesianNetwork()
        net.add_node("A", 2, cpd=[1.0, 0.0])  # state 1 impossible
        net.add_node("B", 2, parents=["A"], cpd=[[0.5, 0.5], [0.5, 0.5]])
        return net

    def test_both_paths_raise_validation_error(self, deterministic_net):
        net = deterministic_net
        with pytest.raises(ValidationError) as oracle_error:
            oracle_conditional(net, ["B"], {"A": 1})
        with pytest.raises(ValidationError) as engine_error:
            net.conditional_table(["B"], {"A": 1})
        assert str(oracle_error.value) == str(engine_error.value)

    def test_out_of_range_evidence_is_zero_probability(self, deterministic_net):
        """A state index outside ``0..k-1`` matches no assignment — the
        oracle reported that as a zero-probability event, and so does the
        engine."""
        net = deterministic_net
        with pytest.raises(ValidationError, match="zero probability"):
            net.conditional_table(["B"], {"A": 5})

    def test_marginals_given_zero_evidence(self, deterministic_net):
        with pytest.raises(ValidationError, match="zero probability"):
            engine_for(deterministic_net).marginals_given(("B",), {"A": 1})


# ----------------------------------------------------------------------
# Beyond the enumeration cap
# ----------------------------------------------------------------------
class TestBeyondEnumerationCap:
    @pytest.fixture(scope="class")
    def big_chain_net(self):
        # 2^24 assignments — 8x past MAX_JOINT_SIZE.
        return DiscreteBayesianNetwork.chain(INITIAL, TRANSITION, 24)

    def test_network_exceeds_cap(self, big_chain_net):
        assert big_chain_net.joint_size() > MAX_JOINT_SIZE
        with pytest.raises(EnumerationError):
            big_chain_net.enumerate_joint()

    def test_marginal_matches_chain_closed_form(self, big_chain_net):
        chain = MarkovChain(INITIAL, TRANSITION)
        for t in (0, 11, 23):
            np.testing.assert_allclose(
                big_chain_net.marginal_of(f"X{t + 1}"), chain.marginal(t), atol=1e-12
            )

    def test_max_influence_matches_chain_formula(self, big_chain_net):
        chain = MarkovChain(INITIAL, TRANSITION)
        quilt = big_chain_net.quilt_from_set("X12", {"X9", "X14"})
        assert quilt is not None
        np.testing.assert_allclose(
            max_influence([big_chain_net], quilt),
            chain_max_influence(chain, 11, 3, 2),
            rtol=1e-10,
        )

    def test_algorithm2_calibrates_beyond_cap(self, big_chain_net):
        """Impossible at seed: the quilt search needed the full joint."""
        quilt_sets = {
            node: big_chain_net.chain_quilts(node, max_window=3)
            for node in big_chain_net.nodes
        }
        mechanism = MarkovQuiltMechanism(
            [big_chain_net], epsilon=2.0, quilt_sets=quilt_sets
        )
        sigma = mechanism.sigma_max()
        assert np.isfinite(sigma) and sigma > 0

    def test_algorithm2_matches_mqm_exact_beyond_cap(self, big_chain_net):
        """MQMExact-versus-Algorithm 2 parity on a path graph whose joint
        the seed could not even enumerate.  The full (unwindowed) Lemma 4.6
        quilt set makes both searches range over identical candidates."""
        length, epsilon = 24, 2.0
        quilt_sets = {
            node: big_chain_net.chain_quilts(node) for node in big_chain_net.nodes
        }
        general = MarkovQuiltMechanism(
            [big_chain_net], epsilon=epsilon, quilt_sets=quilt_sets
        )
        chain = MarkovChain(INITIAL, TRANSITION)
        exact = MQMExact(FiniteChainFamily([chain]), epsilon, max_window=length)
        np.testing.assert_allclose(
            general.sigma_max(), exact.sigma_max(length), rtol=1e-9
        )


# ----------------------------------------------------------------------
# Memoization and registry behavior
# ----------------------------------------------------------------------
class TestMemoization:
    def test_enumerate_joint_is_memoized(self):
        net = DiscreteBayesianNetwork.chain(INITIAL, TRANSITION, 5)
        first = net.enumerate_joint()
        assert net.enumerate_joint() is first

    def test_add_node_invalidates_joint_memo(self):
        net = DiscreteBayesianNetwork.chain(INITIAL, TRANSITION, 3)
        first = net.enumerate_joint()
        net.add_node("extra", 2, parents=["X3"], cpd=TRANSITION)
        second = net.enumerate_joint()
        assert second is not first
        assert len(second[0]) == 2 * len(first[0])

    def test_pickle_drops_joint_memo(self):
        net = DiscreteBayesianNetwork.chain(INITIAL, TRANSITION, 4)
        net.enumerate_joint()
        clone = pickle.loads(pickle.dumps(net))
        assert clone._joint_memo is None
        assert clone.fingerprint() == net.fingerprint()
        np.testing.assert_allclose(clone.marginal_of("X2"), net.marginal_of("X2"))

    def test_engine_registry_shares_by_content(self):
        a = DiscreteBayesianNetwork.chain(INITIAL, TRANSITION, 4)
        b = DiscreteBayesianNetwork.chain(INITIAL, TRANSITION, 4)
        assert engine_for(a) is engine_for(b)

    def test_mutated_network_gets_fresh_engine(self):
        net = DiscreteBayesianNetwork.chain(INITIAL, TRANSITION, 3)
        before = engine_for(net)
        net.add_node("extra", 2, parents=["X3"], cpd=TRANSITION)
        assert engine_for(net) is not before

    def test_engine_usable_without_registry(self):
        net = v_structure_network()
        engine = InferenceEngine(net)
        np.testing.assert_allclose(
            engine.marginal_of("C"), oracle_marginal(net, "C"), rtol=1e-12
        )
