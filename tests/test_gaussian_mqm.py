"""The Gaussian Markov Quilt Mechanism: calibration, serving, statistics.

Three layers of certification:

* **Unit** — the zCDP score formula (``card / sqrt(2 rho(eps - e,
  delta))``), the ``gaussian_rho`` / ``rho_to_epsilon`` closed-form
  inverse pair, fingerprint hygiene (never aliasing the Laplace MQM or a
  different delta), the Rényi cost curve's shape, and parameter
  validation.
* **Serving** — engine integration under both accountants, batch/stream
  bit-identity for Gaussian noise, per-node parallel shard bit-identity
  (mirroring the Laplace MQM-general shard tests), cache warm starts, and
  the single-release Rényi self-consistency (a Gaussian release charged
  through its own curve converts back to its target epsilon at the
  mechanism's delta, up to grid discreteness).
* **Statistical** (``@pytest.mark.statistical`` below) — the released
  noise actually follows the calibrated normal law (one-sample KS), the
  streamed path matches the batched distribution (two-sample KS), and an
  empirical ``(epsilon, delta)`` likelihood-ratio audit on neighboring
  datasets holds with real power (the estimate matches the theoretical
  midpoint separation, so the audit is not vacuous).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.accounting import RenyiAccountant
from repro.core.gaussian import (
    GaussianMarkovQuiltMechanism,
    gaussian_rho,
    rho_to_epsilon,
)
from repro.core.laplace import sample_gaussian
from repro.core.markov_quilt import MarkovQuiltMechanism
from repro.core.queries import CountQuery
from repro.distributions.bayesnet import DiscreteBayesianNetwork
from repro.exceptions import PrivacyParameterError, ValidationError
from repro.parallel import ParallelCalibrator
from repro.serving import CalibrationCache, JSONFileCache, PrivacyEngine

INITIAL = np.array([0.8, 0.2])
TRANSITION = np.array([[0.9, 0.1], [0.4, 0.6]])
EPSILON = 1.0
DELTA = 1e-5


@pytest.fixture
def chain_net():
    return DiscreteBayesianNetwork.chain(INITIAL, TRANSITION, 5)


def make_mechanism(net, epsilon=EPSILON, delta=DELTA):
    return GaussianMarkovQuiltMechanism([net], epsilon, delta=delta)


class TestZcdpCalibration:
    def test_rho_conversion_roundtrips(self):
        for eps in (0.05, 0.2, 1.0, 2.0, 5.0):
            for delta in (1e-9, 1e-5, 1e-2):
                rho = gaussian_rho(eps, delta)
                assert rho > 0
                assert rho_to_epsilon(rho, delta) == pytest.approx(eps)

    def test_rho_validates(self):
        with pytest.raises(PrivacyParameterError):
            gaussian_rho(0.0, 1e-5)
        with pytest.raises(PrivacyParameterError):
            gaussian_rho(1.0, 0.0)
        with pytest.raises(PrivacyParameterError):
            rho_to_epsilon(-0.1, 1e-5)
        with pytest.raises(PrivacyParameterError):
            rho_to_epsilon(1.0, 1.0)

    def test_score_formula_per_node(self, chain_net):
        """sigma_i = min over admissible quilts of
        card(X_N) / sqrt(2 rho(eps - e, delta)) — checked against a manual
        walk of the same candidate set."""
        from repro.core.markov_quilt import max_influence

        mechanism = make_mechanism(chain_net)
        for node in chain_net.nodes:
            best = math.inf
            for quilt in mechanism.quilt_sets[node]:
                influence = max_influence([chain_net], quilt)
                if influence < EPSILON:
                    score = quilt.card_nearby() / math.sqrt(
                        2.0 * gaussian_rho(EPSILON - influence, DELTA)
                    )
                    best = min(best, score)
            assert mechanism.sigma_for_node(node)[0] == pytest.approx(best)

    def test_valid_beyond_epsilon_one(self, chain_net):
        """The classical Gaussian mechanism needs eps < 1; the zCDP
        calibration must keep producing finite, shrinking sigmas past it."""
        sigmas = [
            make_mechanism(chain_net, epsilon=eps).sigma_max()
            for eps in (0.5, 1.0, 2.0, 4.0)
        ]
        assert all(math.isfinite(s) and s > 0 for s in sigmas)
        assert sigmas == sorted(sigmas, reverse=True)

    def test_delta_validation(self, chain_net):
        for bad in (0.0, 1.0, -0.5):
            with pytest.raises(PrivacyParameterError):
                make_mechanism(chain_net, delta=bad)

    def test_tighter_delta_needs_more_noise(self, chain_net):
        loose = make_mechanism(chain_net, delta=1e-2).sigma_max()
        tight = make_mechanism(chain_net, delta=1e-9).sigma_max()
        assert tight > loose


class TestFingerprint:
    def test_never_aliases_the_laplace_mqm(self, chain_net):
        gaussian = make_mechanism(chain_net)
        laplace = MarkovQuiltMechanism([chain_net], EPSILON)
        assert gaussian.calibration_fingerprint() != laplace.calibration_fingerprint()

    def test_delta_is_part_of_the_fingerprint(self, chain_net):
        a = make_mechanism(chain_net, delta=1e-5)
        b = make_mechanism(chain_net, delta=1e-6)
        assert a.calibration_fingerprint() != b.calibration_fingerprint()

    def test_equal_instantiations_share_a_fingerprint(self, chain_net):
        a = make_mechanism(chain_net)
        b = make_mechanism(DiscreteBayesianNetwork.chain(INITIAL, TRANSITION, 5))
        assert a.calibration_fingerprint() == b.calibration_fingerprint()


class TestNoiseFamily:
    def test_sample_gaussian_scales_the_standard_draw(self):
        gen = np.random.default_rng(3)
        want = 2.5 * np.random.default_rng(3).standard_normal(size=10)
        got = sample_gaussian(2.5, size=10, rng=gen)
        assert np.array_equal(got, want)
        assert sample_gaussian(0.0) == 0.0
        assert np.array_equal(sample_gaussian(0.0, size=4), np.zeros(4))
        with pytest.raises(PrivacyParameterError):
            sample_gaussian(-1.0)

    def test_release_adds_gaussian_noise(self, chain_net):
        mechanism = make_mechanism(chain_net)
        data = np.zeros(5)  # true count 0 keeps value - true_value exact
        query = CountQuery()
        calibration = mechanism.calibrate(query, data)
        release = mechanism.release(data, query, rng=11, calibration=calibration)
        noise = release.value - release.true_value
        want = calibration.scale * np.random.default_rng(11).standard_normal()
        assert noise == pytest.approx(want, abs=0.0)

    def test_scale_details_carry_delta_and_rdp_summary(self, chain_net):
        mechanism = make_mechanism(chain_net)
        details = mechanism.scale_details(CountQuery(), np.ones(5))
        assert details["delta"] == DELTA
        assert details["rdp"]["max_snr"] > 0
        assert 0.0 <= details["rdp"]["e_sup"] < EPSILON


class TestRdpCurve:
    def test_shape_and_inf(self, chain_net):
        mechanism = make_mechanism(chain_net)
        mechanism.sigma_max()
        orders = np.array([1.5, 2.0, 8.0, 64.0, math.inf])
        costs = mechanism.rdp_curve(orders)
        assert costs.shape == orders.shape
        assert np.all(costs[:-1] > 0) and np.all(np.isfinite(costs[:-1]))
        assert math.isinf(costs[-1])
        # Non-decreasing in the order.
        assert np.all(np.diff(costs[:-1]) >= -1e-15)

    def test_single_release_self_consistency(self, chain_net):
        """A Gaussian release charged through its own curve converts back
        to (about) its target epsilon at the mechanism's own delta — the
        zCDP calibration and the accountant's conversion are inverses up
        to order-grid discreteness."""
        mechanism = make_mechanism(chain_net)
        mechanism.sigma_max()
        accountant = RenyiAccountant(delta=DELTA)
        accountant.record(
            EPSILON,
            quilt_signature=mechanism.quilt_signature(),
            rdp_curve=mechanism.rdp_curve,
        )
        total = accountant.total_epsilon()
        assert total <= EPSILON * 1.005
        assert total >= EPSILON * 0.9  # not vacuously under-charged
        assert math.isfinite(accountant.optimal_order())

    def test_stream_outlives_linear_by_construction(self, chain_net):
        """A Gaussian stream under Rényi accounting serves strictly more
        than the linear count from the same budget."""
        from repro.core.composition import CompositionAccountant
        from repro.exceptions import BudgetExhaustedError

        budget = 10 * EPSILON

        def served(accountant) -> int:
            engine = PrivacyEngine(
                make_mechanism(DiscreteBayesianNetwork.chain(INITIAL, TRANSITION, 5)),
                accountant=accountant,
                rng=0,
            )
            with engine.stream(np.ones(5), CountQuery()) as session:
                count = 0
                while True:
                    try:
                        next(session)
                        count += 1
                    except BudgetExhaustedError:
                        return count

        linear = served(CompositionAccountant(budget=budget))
        renyi = served(RenyiAccountant(budget=budget, delta=DELTA))
        assert linear == 10  # floor(budget / eps) under Theorem 4.4
        assert renyi > linear


class TestServing:
    def test_batch_stream_bit_identity(self, chain_net):
        data = np.ones(5)
        query = CountQuery()
        batch_engine = PrivacyEngine(make_mechanism(chain_net), rng=42)
        batch = batch_engine.release_batch([(data, query)] * 12)
        stream_engine = PrivacyEngine(
            make_mechanism(DiscreteBayesianNetwork.chain(INITIAL, TRANSITION, 5)),
            rng=42,
        )
        with stream_engine.stream(data, query, block_size=5) as session:
            streamed = session.take(12)
        assert [r.value for r in batch] == [r.value for r in streamed]

    def test_engine_accountant_wiring(self, chain_net):
        engine = PrivacyEngine(make_mechanism(chain_net), accountant="renyi")
        assert isinstance(engine.accountant, RenyiAccountant)
        with pytest.raises(ValidationError):
            PrivacyEngine(
                make_mechanism(chain_net),
                accountant=RenyiAccountant(budget=1.0),
                epsilon_budget=1.0,
            )
        with pytest.raises(ValidationError):
            PrivacyEngine(make_mechanism(chain_net), accountant="moment")

    def test_parallel_per_node_shards_bit_identical(self, chain_net):
        """Mirror of the Laplace MQM-general shard test: scales, per-node
        sigmas, active quilts, and the composition signature all match the
        serial Gaussian run exactly (copy.copy preserves the subclass and
        its delta)."""
        query = CountQuery()
        data = np.ones(5)
        serial_mech = make_mechanism(chain_net)
        serial = serial_mech.calibrate(query, data)
        parallel_mech = make_mechanism(
            DiscreteBayesianNetwork.chain(INITIAL, TRANSITION, 5)
        )
        calibrator = ParallelCalibrator(max_workers=2, min_parallel_cost=0.0)
        plan = calibrator.plan(parallel_mech, query, data)
        assert [shard.key for shard in plan] == list(chain_net.nodes)
        assert all(
            isinstance(shard.payload[0], GaussianMarkovQuiltMechanism)
            and shard.payload[0].delta == DELTA
            for shard in plan
        )
        parallel = calibrator.calibrate(parallel_mech, query, data)
        assert parallel.scale == serial.scale
        assert parallel.details == serial.details
        assert parallel_mech._sigma_cache == serial_mech._sigma_cache
        assert parallel_mech.quilt_signature() == serial_mech.quilt_signature()
        assert parallel_mech.active_quilts() == serial_mech.active_quilts()

    def test_warm_start_via_engine_cache(self, tmp_path, chain_net):
        """A second Gaussian engine restores the per-node search from the
        shared cache — and the restored state is enough for rdp_curve."""
        query = CountQuery()
        data = np.ones(5)
        backend = JSONFileCache(tmp_path / "calibrations.json")
        first = make_mechanism(chain_net)
        engine_a = PrivacyEngine(first, cache=CalibrationCache(backend=backend))
        scale = engine_a.calibrate(query, data).scale
        second = make_mechanism(DiscreteBayesianNetwork.chain(INITIAL, TRANSITION, 5))
        engine_b = PrivacyEngine(second, cache=CalibrationCache(backend=backend))
        assert engine_b.calibrate(query, data).scale == scale
        assert second._sigma_cache.keys() == first._sigma_cache.keys()
        orders = np.array([2.0, 8.0, math.inf])
        np.testing.assert_array_equal(
            second.rdp_curve(orders), first.rdp_curve(orders)
        )

    def test_gaussian_and_laplace_never_share_a_cache_entry(self, chain_net):
        query = CountQuery()
        data = np.ones(5)
        cache = CalibrationCache()
        gaussian_engine = PrivacyEngine(make_mechanism(chain_net), cache=cache)
        laplace_engine = PrivacyEngine(
            MarkovQuiltMechanism([chain_net], EPSILON), cache=cache
        )
        g_scale = gaussian_engine.calibrate(query, data).scale
        l_scale = laplace_engine.calibrate(query, data).scale
        assert cache.misses == 2  # distinct fingerprints, no aliasing
        assert g_scale != l_scale


# ----------------------------------------------------------------------
# Statistical audits (own CI lane, seeded and reproducible)
# ----------------------------------------------------------------------
N_SAMPLES = 4000

AUDIT_EPSILON = 2.0
AUDIT_DELTA = 1e-2


def normal_cdf(x: np.ndarray, loc: float, scale: float) -> np.ndarray:
    z = (np.asarray(x, dtype=float) - loc) / (scale * math.sqrt(2.0))
    return np.array([0.5 * (1.0 + math.erf(v)) for v in z])


def ks_one_sample(samples: np.ndarray, cdf_values_at_sorted: np.ndarray) -> float:
    n = samples.size
    grid = np.arange(1, n + 1) / n
    return float(
        np.max(
            np.maximum(
                grid - cdf_values_at_sorted,
                cdf_values_at_sorted - (grid - 1.0 / n),
            )
        )
    )


def ks_two_sample(a: np.ndarray, b: np.ndarray) -> float:
    values = np.concatenate([a, b])
    values.sort(kind="mergesort")
    cdf_a = np.searchsorted(np.sort(a), values, side="right") / a.size
    cdf_b = np.searchsorted(np.sort(b), values, side="right") / b.size
    return float(np.abs(cdf_a - cdf_b).max())


@pytest.fixture(scope="module")
def audit_workload():
    net = DiscreteBayesianNetwork.chain(INITIAL, TRANSITION, 3)
    query = CountQuery()
    data = np.zeros(3, dtype=int)
    return net, query, data


def audit_mechanism(net):
    return GaussianMarkovQuiltMechanism(
        [net], AUDIT_EPSILON, delta=AUDIT_DELTA
    )


@pytest.mark.statistical
def test_release_noise_matches_calibrated_normal_ks(audit_workload):
    net, query, data = audit_workload
    engine = PrivacyEngine(audit_mechanism(net))
    scale = engine.calibrate(query, data).scale
    releases = engine.release_repeated(data, query, N_SAMPLES, rng=11)
    noise = np.sort(np.array([r.value - r.true_value for r in releases]))
    statistic = ks_one_sample(noise, normal_cdf(noise, 0.0, scale))
    # alpha = 0.01 one-sample critical value, as in the Laplace audit.
    assert statistic < 1.63 / math.sqrt(N_SAMPLES)


@pytest.mark.statistical
def test_streamed_matches_batched_distribution_ks(audit_workload):
    net, query, data = audit_workload
    batched_engine = PrivacyEngine(audit_mechanism(net))
    batched = np.array(
        [
            r.value - r.true_value
            for r in batched_engine.release_repeated(data, query, N_SAMPLES, rng=13)
        ]
    )
    stream_engine = PrivacyEngine(audit_mechanism(net))
    with stream_engine.stream(data, query, rng=17, block_size=128) as session:
        streamed = np.array(
            [r.value - r.true_value for r in session.take(N_SAMPLES)]
        )
    statistic = ks_two_sample(batched, streamed)
    assert statistic < 1.63 * math.sqrt(2.0 / N_SAMPLES)


@pytest.mark.statistical
def test_empirical_epsilon_delta_audit_on_neighboring_datasets(audit_workload):
    """(epsilon, delta) likelihood-ratio audit: for the midpoint half-line
    (asymptotically the optimal distinguishing region for a Gaussian
    shift), acceptance frequencies on neighboring datasets must satisfy
    ``q <= e^eps p + delta`` both ways — and the measured log-ratio must
    match the theoretical midpoint separation, so the audit has power."""
    net, query, data = audit_workload
    neighbor = data.copy()
    neighbor[1] = 1  # one record changed
    engine_d = PrivacyEngine(audit_mechanism(net))
    engine_n = PrivacyEngine(audit_mechanism(net))
    rel_d = engine_d.release_repeated(data, query, N_SAMPLES, rng=23)
    rel_n = engine_n.release_repeated(neighbor, query, N_SAMPLES, rng=29)
    values_d = np.array([r.value for r in rel_d])
    values_n = np.array([r.value for r in rel_n])
    true_d, true_n = float(query(data)), float(query(neighbor))
    midpoint = (true_d + true_n) / 2.0

    p = float(np.mean(values_d >= midpoint))
    q = float(np.mean(values_n >= midpoint))
    assert 0.0 < p < 1.0 and 0.0 < q < 1.0
    # Binomial standard error at n=4000 is ~0.008; 4 SEs of slack.
    slack = 0.032
    assert q <= math.exp(AUDIT_EPSILON) * p + AUDIT_DELTA + slack
    assert p <= math.exp(AUDIT_EPSILON) * q + AUDIT_DELTA + slack

    # Power: the measured log-ratio equals the theoretical Gaussian
    # midpoint separation log Phi(s/2σ) - log Phi(-s/2σ), s = |F(D)-F(D')|.
    sigma = engine_d.calibrate(query, data).scale
    shift = abs(true_n - true_d)
    z = shift / (2.0 * sigma)
    theory = abs(
        math.log(
            (0.5 * (1.0 + math.erf(z / math.sqrt(2.0))))
            / (0.5 * (1.0 + math.erf(-z / math.sqrt(2.0))))
        )
    )
    measured = abs(math.log(q / p))
    assert theory > 0.1  # the workload separates: the audit is not vacuous
    assert abs(measured - theory) < 0.12
