"""Numeric verification of the Pufferfish guarantee (Definition 2.1).

For small enumerable instantiations the released density is a finite Laplace
mixture, so ``P(M(X) = w | s, theta)`` can be computed in closed form and
the likelihood-ratio bound ``e^eps`` checked directly on a grid of outputs.
This exercises the *entire* noise-calibration pipeline end to end: Eq. (5)
tables, support masking, quilt search, the C.4 initial-distribution
optimization, the mixing bounds, and the Wasserstein supremum.
"""

import numpy as np
import pytest

from repro.baselines.group_dp import GroupDPMechanism
from repro.core.framework import entrywise_instantiation
from repro.core.laplace import laplace_density
from repro.core.models import FluCliqueModel, MarkovChainModel
from repro.core.mqm_chain import MQMApprox, MQMExact
from repro.core.queries import CountQuery, StateFrequencyQuery
from repro.core.wasserstein import WassersteinMechanism
from repro.distributions.chain_family import FiniteChainFamily, IntervalChainFamily
from repro.distributions.markov import MarkovChain

#: Multiplicative slack on e^eps for floating-point error.
SLACK = 1.0 + 1e-9


def release_density(model, query, secret, scale, w_grid):
    """Density of ``F(X) + Lap(scale)`` given the secret, on the grid."""
    density = np.zeros_like(w_grid)
    mass = 0.0
    for row, prob in model.support():
        if row[secret.index] == secret.value:
            density += prob * laplace_density(w_grid, float(query(np.asarray(row))), scale)
            mass += prob
    assert mass > 0
    return density / mass


def assert_pufferfish_holds(instantiation, query, scale, epsilon):
    """Check inequality (1) for every theta, admissible pair, and output."""
    outputs = []
    for model in instantiation.models:
        outputs.extend(float(query(np.asarray(row))) for row, _ in model.support())
    lo, hi = min(outputs), max(outputs)
    pad = 4.0 * scale + 1.0
    w_grid = np.linspace(lo - pad, hi + pad, 301)
    bound = np.exp(epsilon) * SLACK
    for model in instantiation.models:
        for pair in instantiation.admissible_pairs(model):
            left = release_density(model, query, pair.left, scale, w_grid)
            right = release_density(model, query, pair.right, scale, w_grid)
            ratio = left / right
            assert ratio.max() <= bound, (
                f"Pufferfish violated for {pair.describe()}: "
                f"max ratio {ratio.max():.6f} > e^eps = {np.exp(epsilon):.6f}"
            )
            assert (1.0 / ratio).max() <= bound


CHAINS = {
    "uniformish": MarkovChain([0.5, 0.5], [[0.7, 0.3], [0.2, 0.8]]),
    "degenerate-initial": MarkovChain([1.0, 0.0], [[0.9, 0.1], [0.4, 0.6]]),
    "sticky": MarkovChain([0.6, 0.4], [[0.95, 0.05], [0.1, 0.9]]),
}


class TestMQMExactPrivacy:
    @pytest.mark.parametrize("name", sorted(CHAINS))
    @pytest.mark.parametrize("epsilon", [0.5, 1.0, 3.0])
    def test_single_theta(self, name, epsilon):
        chain = CHAINS[name]
        length = 5
        family = FiniteChainFamily([chain])
        mech = MQMExact(family, epsilon, max_window=length)
        query = StateFrequencyQuery(1, length)
        scale = query.lipschitz * mech.sigma_max(length)
        inst = entrywise_instantiation(length, 2, [MarkovChainModel(chain, length)])
        assert_pufferfish_holds(inst, query, scale, epsilon)

    def test_support_restriction_is_still_private(self):
        """The tighter Definition-4.1 semantics must still satisfy (1)."""
        chain = CHAINS["degenerate-initial"]
        length = 6
        epsilon = 1.0
        mech = MQMExact(
            FiniteChainFamily([chain]), epsilon, max_window=length, restrict_support=True
        )
        query = StateFrequencyQuery(1, length)
        scale = query.lipschitz * mech.sigma_max(length)
        inst = entrywise_instantiation(length, 2, [MarkovChainModel(chain, length)])
        assert_pufferfish_holds(inst, query, scale, epsilon)

    def test_multi_theta_family(self):
        thetas = [CHAINS["uniformish"], CHAINS["sticky"]]
        length, epsilon = 5, 1.0
        mech = MQMExact(FiniteChainFamily(thetas), epsilon, max_window=length)
        query = StateFrequencyQuery(1, length)
        scale = query.lipschitz * mech.sigma_max(length)
        inst = entrywise_instantiation(
            length, 2, [MarkovChainModel(theta, length) for theta in thetas]
        )
        assert_pufferfish_holds(inst, query, scale, epsilon)

    def test_free_initial_family_protects_any_initial(self):
        """The C.4 optimization must cover every initial distribution."""
        family = IntervalChainFamily(0.3, grid_step=0.2)
        length, epsilon = 5, 1.0
        mech = MQMExact(family, epsilon, max_window=length)
        query = StateFrequencyQuery(1, length)
        scale = query.lipschitz * mech.sigma_max(length)
        rng = np.random.default_rng(0)
        models = []
        for p0 in family.parameter_grid():
            for q in ([1.0, 0.0], [0.0, 1.0], rng.dirichlet([1, 1]).tolist()):
                chain = MarkovChain(q, IntervalChainFamily.transition_for(p0, p0))
                models.append(MarkovChainModel(chain, length))
        inst = entrywise_instantiation(length, 2, models)
        assert_pufferfish_holds(inst, query, scale, epsilon)


class TestMQMApproxPrivacy:
    @pytest.mark.parametrize("epsilon", [1.0, 3.0])
    def test_mixing_chain(self, epsilon):
        chain = CHAINS["uniformish"].with_stationary_initial()
        length = 6
        mech = MQMApprox(FiniteChainFamily([chain]), epsilon)
        query = StateFrequencyQuery(1, length)
        scale = query.lipschitz * mech.sigma_max(length)
        inst = entrywise_instantiation(length, 2, [MarkovChainModel(chain, length)])
        assert_pufferfish_holds(inst, query, scale, epsilon)


class TestWassersteinPrivacy:
    @pytest.mark.parametrize("epsilon", [0.5, 1.0, 2.0])
    def test_flu_clique(self, epsilon):
        model = FluCliqueModel([4], [[0.1, 0.15, 0.5, 0.15, 0.1]])
        inst = entrywise_instantiation(4, 2, [model])
        mech = WassersteinMechanism(inst, epsilon)
        query = CountQuery()
        scale = mech.noise_scale(query, np.zeros(4, dtype=int))
        assert_pufferfish_holds(inst, query, scale, epsilon)

    def test_markov_chain_model(self):
        chain = CHAINS["sticky"]
        length, epsilon = 4, 1.0
        inst = entrywise_instantiation(
            length, 2, [MarkovChainModel(chain, length)]
        )
        mech = WassersteinMechanism(inst, epsilon)
        query = StateFrequencyQuery(1, length)
        scale = mech.noise_scale(query, np.zeros(length, dtype=int))
        assert_pufferfish_holds(inst, query, scale, epsilon)


class TestGroupDPPrivacy:
    def test_whole_chain_group(self):
        """GroupDP over one fully-correlated group satisfies Pufferfish."""
        chain = CHAINS["sticky"]
        length, epsilon = 5, 1.0
        query = StateFrequencyQuery(1, length)
        mech = GroupDPMechanism(epsilon)
        scale = mech.noise_scale(query, np.zeros(length, dtype=int))
        inst = entrywise_instantiation(length, 2, [MarkovChainModel(chain, length)])
        assert_pufferfish_holds(inst, query, scale, epsilon)


class TestCalibrationIsNotVacuous:
    def test_insufficient_noise_fails_verification(self):
        """Sanity: the verifier must catch an under-calibrated mechanism."""
        chain = CHAINS["sticky"]
        length, epsilon = 5, 1.0
        query = StateFrequencyQuery(1, length)
        inst = entrywise_instantiation(length, 2, [MarkovChainModel(chain, length)])
        # Entry-DP scale (L/eps) ignores correlation and must violate (1).
        too_small = query.lipschitz / epsilon
        with pytest.raises(AssertionError):
            assert_pufferfish_holds(inst, query, too_small, epsilon)
