"""Unit tests for DiscreteDistribution."""

import numpy as np
import pytest

from repro.distributions.discrete import DiscreteDistribution
from repro.exceptions import ValidationError


class TestConstruction:
    def test_basic(self):
        d = DiscreteDistribution(np.array([0.0, 1.0]), np.array([0.3, 0.7]))
        assert d.n_atoms == 2

    def test_from_pairs_merges_duplicates(self):
        d = DiscreteDistribution.from_pairs([(1.0, 0.25), (0.0, 0.5), (1.0, 0.25)])
        np.testing.assert_allclose(d.atoms, [0.0, 1.0])
        np.testing.assert_allclose(d.probs, [0.5, 0.5])

    def test_from_pairs_drops_zero_mass(self):
        d = DiscreteDistribution.from_pairs([(0.0, 1.0), (5.0, 0.0)])
        assert d.n_atoms == 1

    def test_from_mapping(self):
        d = DiscreteDistribution.from_mapping({2.0: 0.5, -1.0: 0.5})
        np.testing.assert_allclose(d.atoms, [-1.0, 2.0])

    def test_from_samples(self):
        d = DiscreteDistribution.from_samples([1, 1, 2, 2, 2, 3])
        np.testing.assert_allclose(d.probs, [2 / 6, 3 / 6, 1 / 6])

    def test_point_mass(self):
        d = DiscreteDistribution.point_mass(4.0)
        assert d.mean() == 4.0
        assert d.variance() == 0.0

    def test_rejects_unsorted_atoms(self):
        with pytest.raises(ValidationError):
            DiscreteDistribution(np.array([1.0, 0.0]), np.array([0.5, 0.5]))

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValidationError):
            DiscreteDistribution(np.array([1.0]), np.array([0.5, 0.5]))

    def test_rejects_negative_probs(self):
        with pytest.raises(ValidationError):
            DiscreteDistribution.from_pairs([(0.0, -0.5), (1.0, 1.5)])

    def test_rejects_all_zero(self):
        with pytest.raises(ValidationError):
            DiscreteDistribution.from_pairs([(0.0, 0.0)])


class TestQueries:
    @pytest.fixture
    def dist(self):
        return DiscreteDistribution(np.array([0.0, 1.0, 3.0]), np.array([0.2, 0.5, 0.3]))

    def test_mean(self, dist):
        np.testing.assert_allclose(dist.mean(), 0.2 * 0 + 0.5 * 1 + 0.3 * 3)

    def test_variance_nonnegative(self, dist):
        assert dist.variance() >= 0

    def test_cdf_values(self, dist):
        assert dist.cdf(-0.5) == 0.0
        np.testing.assert_allclose(dist.cdf(0.0), 0.2)
        np.testing.assert_allclose(dist.cdf(2.0), 0.7)
        assert dist.cdf(3.0) == 1.0

    def test_cdf_vectorized(self, dist):
        np.testing.assert_allclose(dist.cdf(np.array([0.0, 1.0])), [0.2, 0.7])

    def test_quantile_inverts_cdf(self, dist):
        assert dist.quantile(0.1) == 0.0
        assert dist.quantile(0.2) == 0.0
        assert dist.quantile(0.21) == 1.0
        assert dist.quantile(1.0) == 3.0

    def test_quantile_rejects_bad_levels(self, dist):
        with pytest.raises(ValidationError):
            dist.quantile(1.5)

    def test_probability_of(self, dist):
        assert dist.probability_of(1.0) == 0.5
        assert dist.probability_of(2.0) == 0.0

    def test_support_drops_zeros(self):
        d = DiscreteDistribution(np.array([0.0, 1.0]), np.array([1.0, 0.0]))
        np.testing.assert_allclose(d.support(), [0.0])


class TestTransforms:
    def test_shift(self):
        d = DiscreteDistribution(np.array([0.0, 1.0]), np.array([0.5, 0.5]))
        shifted = d.shift(2.0)
        np.testing.assert_allclose(shifted.atoms, [2.0, 3.0])

    def test_scale_negative_flips_order(self):
        d = DiscreteDistribution(np.array([0.0, 1.0]), np.array([0.25, 0.75]))
        scaled = d.scale(-1.0)
        np.testing.assert_allclose(scaled.atoms, [-1.0, 0.0])
        np.testing.assert_allclose(scaled.probs, [0.75, 0.25])

    def test_scale_zero_collapses(self):
        d = DiscreteDistribution(np.array([0.0, 1.0]), np.array([0.5, 0.5]))
        assert d.scale(0.0).n_atoms == 1

    def test_map_merges_images(self):
        d = DiscreteDistribution(np.array([-1.0, 1.0]), np.array([0.5, 0.5]))
        squared = d.map(lambda x: x * x)
        assert squared.n_atoms == 1
        assert squared.probability_of(1.0) == 1.0

    def test_mixture_weights(self):
        a = DiscreteDistribution.point_mass(0.0)
        b = DiscreteDistribution.point_mass(1.0)
        mix = a.mixture(b, 0.25)
        np.testing.assert_allclose(mix.probs, [0.25, 0.75])

    def test_mixture_rejects_bad_weight(self):
        a = DiscreteDistribution.point_mass(0.0)
        with pytest.raises(ValidationError):
            a.mixture(a, 1.5)

    def test_restrict(self):
        d = DiscreteDistribution(np.array([0.0, 1.0, 2.0]), np.array([0.2, 0.3, 0.5]))
        cond = d.restrict(lambda x: x >= 1)
        np.testing.assert_allclose(cond.probs, [0.375, 0.625])

    def test_restrict_zero_probability_event(self):
        d = DiscreteDistribution.point_mass(0.0)
        with pytest.raises(ValidationError):
            d.restrict(lambda x: x > 10)

    def test_sample_support(self):
        d = DiscreteDistribution(np.array([3.0, 7.0]), np.array([0.5, 0.5]))
        samples = d.sample(100, np.random.default_rng(0))
        assert set(np.unique(samples)) <= {3.0, 7.0}

    def test_allclose(self):
        a = DiscreteDistribution(np.array([0.0, 1.0]), np.array([0.5, 0.5]))
        b = DiscreteDistribution.from_pairs([(1.0, 0.5), (0.0, 0.5)])
        assert a.allclose(b)
        c = DiscreteDistribution(np.array([0.0, 1.0]), np.array([0.4, 0.6]))
        assert not a.allclose(c)
