"""The invariant linter, proven live: every rule R1–R6 fails on a seeded
violation and stays quiet on the compliant twin, suppressions require
justification, JSON output round-trips, exit codes behave — and the
repo's own tree lints clean (the check CI runs, run here too so a
regression fails tier-1 and not just the lint lane).

The linter is pure stdlib; so is this test module (no numpy).
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.staticcheck import LintConfig, Linter
from repro.staticcheck.rules import (
    CheckThenActRule,
    CrashSafetyRule,
    DeterminismRule,
    FaultPointRule,
    LockDisciplineRule,
    TransactionDisciplineRule,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
EVERYWHERE = ("*.py",)  # fnmatch: '*' crosses '/' — matches any .py file


def run_lint(tmp_path, files, rules, fault_points=None):
    """Write fixture ``files`` under ``tmp_path`` and lint them."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    config = LintConfig(
        root=tmp_path,
        fault_points=None if fault_points is None else frozenset(fault_points),
    )
    return Linter(config, rules=rules).run()


def rules_hit(result):
    return sorted({f.rule for f in result.findings})


# -- R1: lock discipline -----------------------------------------------------

R1_VIOLATING = """\
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()
            self._buf = []

        def _refill_locked(self):
            self._buf.append(1)

        def bad(self):
            self._refill_locked()
"""

R1_COMPLIANT = """\
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()
            self._buf = []

        def _refill_locked(self):
            self._buf.append(1)

        def good(self):
            with self._lock:
                self._refill_locked()

        def _drain_locked(self):
            self._refill_locked()  # guard transfers to *our* caller
"""


def test_r1_flags_unlocked_locked_call(tmp_path):
    result = run_lint(
        tmp_path, {"mod.py": R1_VIOLATING}, [LockDisciplineRule(EVERYWHERE)]
    )
    assert rules_hit(result) == ["R1"]
    (finding,) = result.findings
    assert "_refill_locked" in finding.message
    assert finding.path == "mod.py"


def test_r1_quiet_on_compliant(tmp_path):
    result = run_lint(
        tmp_path, {"mod.py": R1_COMPLIANT}, [LockDisciplineRule(EVERYWHERE)]
    )
    assert result.findings == []


def test_r1_docstring_guarded_attributes(tmp_path):
    source = """\
        import threading

        class Session:
            \"\"\"A session.

            :guarded: _noise, _pos
            \"\"\"

            def __init__(self):
                self._lock = threading.Lock()
                self._noise = []  # constructors are exempt
                self._pos = 0

            def bad(self):
                return self._noise[self._pos]

            def good(self):
                with self._lock:
                    return self._noise[self._pos]
    """
    result = run_lint(
        tmp_path, {"mod.py": source}, [LockDisciplineRule(EVERYWHERE)]
    )
    flagged = {f.message for f in result.findings}
    assert len(result.findings) == 2  # _noise and _pos in bad() only
    assert any("_noise" in m for m in flagged)
    assert any("_pos" in m for m in flagged)


# -- R2: check-then-act ------------------------------------------------------

R2_VIOLATING = """\
    class Engine:
        def bad(self, eps):
            with self._mutex:
                remaining = self.accountant.remaining()
            if remaining >= eps:
                self.accountant.record(eps)  # lock dropped: check is stale
"""

R2_COMPLIANT = """\
    class Engine:
        def good(self, eps):
            with self._mutex:
                if self.accountant.remaining() >= eps:
                    self.accountant.record(eps)
"""


def test_r2_flags_split_check_and_debit(tmp_path):
    result = run_lint(
        tmp_path, {"mod.py": R2_VIOLATING}, [CheckThenActRule(EVERYWHERE)]
    )
    assert rules_hit(result) == ["R2"]
    assert "atomic region" in result.findings[0].message


def test_r2_quiet_on_atomic_pair(tmp_path):
    result = run_lint(
        tmp_path, {"mod.py": R2_COMPLIANT}, [CheckThenActRule(EVERYWHERE)]
    )
    assert result.findings == []


def test_r2_yield_must_be_dominated_by_debit(tmp_path):
    source = """\
        class FooSession:
            def stream(self):
                while True:
                    yield self._noise.pop()

        class BarSession:
            def stream(self):
                while True:
                    self.engine._debit_one(self._signature)
                    yield self._noise.pop()
    """
    result = run_lint(
        tmp_path, {"mod.py": source}, [CheckThenActRule(EVERYWHERE)]
    )
    assert len(result.findings) == 1
    assert result.findings[0].line == 4  # FooSession's yield only
    assert "debit" in result.findings[0].message


# -- R3: crash-exception safety ----------------------------------------------

R3_VIOLATING = """\
    from repro.faults import fire

    def swallow_everything(path):
        try:
            path.unlink()
        except BaseException:
            pass  # would tidy up after a simulated crash

    def swallow_fault(cache):
        try:
            fire("cache.flush")
            cache.flush()
        except Exception:
            pass
"""

R3_COMPLIANT = """\
    from repro.faults import fire

    def crash_aware(path):
        try:
            path.unlink()
        except BaseException as error:
            if not getattr(error, "simulates_crash", False):
                path.unlink(missing_ok=True)
            raise

    def handled(cache):
        try:
            fire("cache.flush")
            cache.flush()
        except Exception as error:
            return {"error": str(error)}
"""


def test_r3_flags_swallowing_handlers(tmp_path):
    result = run_lint(
        tmp_path, {"mod.py": R3_VIOLATING}, [CrashSafetyRule(EVERYWHERE)]
    )
    assert rules_hit(result) == ["R3"]
    assert len(result.findings) == 2
    messages = " ".join(f.message for f in result.findings)
    assert "SimulatedCrashError" in messages
    assert "fault point" in messages


def test_r3_quiet_on_reraise_idiom(tmp_path):
    result = run_lint(
        tmp_path, {"mod.py": R3_COMPLIANT}, [CrashSafetyRule(EVERYWHERE)]
    )
    assert result.findings == []


# -- R4: determinism ---------------------------------------------------------

R4_VIOLATING = """\
    import time
    import random

    def cache_key(payload):
        return hash(payload) ^ int(time.time()) ^ random.getrandbits(8)

    def signatures(items):
        return [normalize(x) for x in set(items)]
"""

R4_COMPLIANT = """\
    import hashlib
    import random

    def cache_key(payload, seed):
        rng = random.Random(seed)
        digest = hashlib.sha256(payload).hexdigest()
        return digest, rng.random()

    def signatures(items):
        return [normalize(x) for x in sorted(set(items))]
"""


def test_r4_flags_nondeterminism(tmp_path):
    result = run_lint(
        tmp_path, {"mod.py": R4_VIOLATING}, [DeterminismRule(EVERYWHERE)]
    )
    assert rules_hit(result) == ["R4"]
    messages = " ".join(f.message for f in result.findings)
    assert "hash" in messages
    assert "time.time" in messages
    assert "random.getrandbits" in messages
    assert "set" in messages
    assert len(result.findings) == 4


def test_r4_quiet_on_seeded_and_sorted(tmp_path):
    result = run_lint(
        tmp_path, {"mod.py": R4_COMPLIANT}, [DeterminismRule(EVERYWHERE)]
    )
    assert result.findings == []


# -- R5: fault-point conformance ---------------------------------------------

DECLARED = ("cache.flush", "tenant.consume")


def test_r5_flags_undeclared_fire_site(tmp_path):
    source = """\
        from repro.faults import fire

        def flush(point):
            fire("cache.flsh")  # typo'd
            fire(point)  # dynamic: unauditable
            fire("cache.flush")  # declared: fine
    """
    result = run_lint(
        tmp_path,
        {"src/repro/mod.py": source},
        [FaultPointRule()],
        fault_points=DECLARED,
    )
    assert rules_hit(result) == ["R5"]
    messages = " ".join(f.message for f in result.findings)
    assert "cache.flsh" in messages
    assert "string-literal" in messages
    assert len(result.findings) == 2


def test_r5_flags_orphan_test_pattern(tmp_path):
    source = """\
        from repro.faults import FaultRule

        def test_chaos(tmp_store):
            rules = [
                FaultRule("cache.*", action="crash"),  # matches declared
                FaultRule("ledgr.*", error="io"),  # typo: matches nothing
            ]
            spec = {"rules": [{"point": "tenant.consume"}]}  # declared
            return rules, spec

        def test_synthetic(injector):
            injector.fire("p")
            return FaultRule("p")  # fired in this file: fine
    """
    result = run_lint(
        tmp_path,
        {"tests/test_mod.py": source},
        [FaultPointRule()],
        fault_points=DECLARED,
    )
    assert rules_hit(result) == ["R5"]
    (finding,) = result.findings
    assert "ledgr.*" in finding.message


# -- R6: transaction discipline ----------------------------------------------

R6_VIOLATING = """\
    class Ledger:
        def bad(self, key, n):
            def handler(txn):
                self._consume_in_state(txn.state, n)
                return txn.state

            state = self.store.run(self.tenant, handler)
            state["idempotency"][key] = {"response": n}  # after commit!
"""

R6_COMPLIANT = """\
    class Ledger:
        def good(self, key, n):
            def handler(txn):
                records = txn.state.setdefault("idempotency", {})
                self._consume_in_state(txn.state, n)
                records[key] = {"response": n}
                return txn.state

            return self.store.run(self.tenant, handler)
"""


def test_r6_flags_post_commit_idempotency_write(tmp_path):
    result = run_lint(
        tmp_path,
        {"mod.py": R6_VIOLATING},
        [TransactionDisciplineRule(EVERYWHERE)],
    )
    assert rules_hit(result) == ["R6"]
    messages = " ".join(f.message for f in result.findings)
    assert "transaction closure" in messages


def test_r6_quiet_on_shared_closure(tmp_path):
    result = run_lint(
        tmp_path,
        {"mod.py": R6_COMPLIANT},
        [TransactionDisciplineRule(EVERYWHERE)],
    )
    assert result.findings == []


# -- suppressions ------------------------------------------------------------


def annotate(source, needle, comment):
    """Append ``comment`` to the (unique) line containing ``needle``."""
    lines = source.splitlines()
    matches = [i for i, line in enumerate(lines) if needle in line]
    assert len(matches) == 1, (needle, matches)
    lines[matches[0]] += "  " + comment
    return "\n".join(lines) + "\n"


def test_suppression_with_justification_suppresses(tmp_path):
    source = annotate(
        R1_VIOLATING,
        "self._refill_locked()",
        "# repro-lint: disable=R1 -- single-threaded test fixture",
    )
    result = run_lint(
        tmp_path, {"mod.py": source}, [LockDisciplineRule(EVERYWHERE)]
    )
    assert result.findings == []
    assert len(result.suppressed) == 1
    assert result.exit_code() == 0


def test_suppression_by_rule_name_and_all(tmp_path):
    for token in ("lock-discipline", "all"):
        source = annotate(
            R1_VIOLATING,
            "self._refill_locked()",
            f"# repro-lint: disable={token} -- fixture",
        )
        result = run_lint(
            tmp_path, {"mod.py": source}, [LockDisciplineRule(EVERYWHERE)]
        )
        assert result.findings == [], token
        assert len(result.suppressed) == 1, token


def test_suppression_without_justification_is_a_finding(tmp_path):
    source = annotate(
        R1_VIOLATING, "self._refill_locked()", "# repro-lint: disable=R1"
    )
    result = run_lint(
        tmp_path, {"mod.py": source}, [LockDisciplineRule(EVERYWHERE)]
    )
    names = {f.name for f in result.findings}
    # The naked suppression is rejected AND the R1 finding still stands.
    assert "bad-suppression" in names
    assert "lock-discipline" in names
    assert result.exit_code() == 1


def test_unused_suppression_fails_only_strict(tmp_path):
    source = R1_COMPLIANT.replace(
        "            with self._lock:",
        "            # repro-lint: disable=R1 -- stale comment\n"
        "            with self._lock:",
    )
    result = run_lint(
        tmp_path, {"mod.py": source}, [LockDisciplineRule(EVERYWHERE)]
    )
    assert result.findings == []
    assert len(result.unused_suppressions) == 1
    assert result.exit_code(strict=False) == 0
    assert result.exit_code(strict=True) == 1


def test_wrong_rule_suppression_does_not_suppress(tmp_path):
    source = annotate(
        R1_VIOLATING,
        "self._refill_locked()",
        "# repro-lint: disable=R4 -- wrong rule",
    )
    result = run_lint(
        tmp_path, {"mod.py": source}, [LockDisciplineRule(EVERYWHERE)]
    )
    assert rules_hit(result) == ["R1"]
    assert len(result.unused_suppressions) == 1


# -- output and exit codes ---------------------------------------------------


def test_json_output_round_trips(tmp_path):
    result = run_lint(
        tmp_path, {"mod.py": R1_VIOLATING}, [LockDisciplineRule(EVERYWHERE)]
    )
    payload = json.loads(result.render_json())
    assert payload["files_checked"] == 1
    (finding,) = payload["findings"]
    assert finding["rule"] == "R1"
    assert finding["path"] == "mod.py"
    assert finding["line"] > 1
    assert "message" in finding


def test_text_output_has_location_and_summary(tmp_path):
    result = run_lint(
        tmp_path, {"mod.py": R1_VIOLATING}, [LockDisciplineRule(EVERYWHERE)]
    )
    text = result.render_text()
    assert "mod.py:" in text
    assert "R1[lock-discipline]" in text
    assert "1 finding(s)" in text


def test_parse_error_is_reported_not_raised(tmp_path):
    result = run_lint(
        tmp_path,
        {"mod.py": "def broken(:\n"},
        [LockDisciplineRule(EVERYWHERE)],
    )
    (finding,) = result.findings
    assert finding.name == "parse-error"
    assert result.exit_code() == 1


def test_cli_exit_codes_and_json(tmp_path):
    from repro.staticcheck import cli

    # Place the fixture where the default R1 targets look for it.
    target = tmp_path / "src" / "repro" / "serving" / "stream.py"
    target.parent.mkdir(parents=True)
    target.write_text(textwrap.dedent(R1_VIOLATING))
    assert cli.main([str(tmp_path), "--select", "R4"]) == 0  # R4 finds nothing
    assert cli.main([str(tmp_path), "--select", "R1"]) == 1
    assert cli.main([str(target)]) == 2  # not a directory


# -- the repo's own tree -----------------------------------------------------


def test_repo_tree_lints_clean_strict():
    result = Linter(LintConfig(root=REPO_ROOT)).run()
    assert result.findings == [], "\n" + "\n".join(
        f.render() for f in result.findings
    )
    assert result.unused_suppressions == []
    # The deliberate, justified exceptions stay visible.
    assert len(result.suppressed) >= 1


def test_module_entry_point_works_without_numpy(tmp_path):
    """`python -m repro lint` in a bare container: numpy import blocked."""
    probe = (
        "import sys; sys.modules['numpy'] = None; "
        "from repro.__main__ import main; "
        "sys.exit(main(['lint', %r, '--strict']))" % str(REPO_ROOT)
    )
    proc = subprocess.run(
        [sys.executable, "-c", probe],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 finding(s)" in proc.stdout
