"""Unit tests for the discrete Bayesian-network substrate."""

import numpy as np
import pytest

from repro.distributions.bayesnet import DiscreteBayesianNetwork
from repro.exceptions import ValidationError


@pytest.fixture
def diamond():
    """The Figure 2 network: X1 -> {X2, X3} -> X4."""
    net = DiscreteBayesianNetwork()
    net.add_node("X1", 2, cpd=[0.6, 0.4])
    net.add_node("X2", 2, parents=["X1"], cpd=[[0.7, 0.3], [0.2, 0.8]])
    net.add_node("X3", 2, parents=["X1"], cpd=[[0.9, 0.1], [0.4, 0.6]])
    net.add_node(
        "X4",
        2,
        parents=["X2", "X3"],
        cpd=[[[0.8, 0.2], [0.5, 0.5]], [[0.3, 0.7], [0.1, 0.9]]],
    )
    return net


@pytest.fixture
def chain5():
    return DiscreteBayesianNetwork.chain(
        np.array([0.8, 0.2]), np.array([[0.9, 0.1], [0.4, 0.6]]), 5
    )


class TestConstruction:
    def test_duplicate_node_rejected(self):
        net = DiscreteBayesianNetwork()
        net.add_node("A", 2, cpd=[0.5, 0.5])
        with pytest.raises(ValidationError):
            net.add_node("A", 2, cpd=[0.5, 0.5])

    def test_unknown_parent_rejected(self):
        net = DiscreteBayesianNetwork()
        with pytest.raises(ValidationError):
            net.add_node("B", 2, parents=["missing"], cpd=[[0.5, 0.5]])

    def test_cpd_shape_checked(self):
        net = DiscreteBayesianNetwork()
        net.add_node("A", 2, cpd=[0.5, 0.5])
        with pytest.raises(ValidationError):
            net.add_node("B", 2, parents=["A"], cpd=[0.5, 0.5])

    def test_cpd_normalization_checked(self):
        net = DiscreteBayesianNetwork()
        with pytest.raises(ValidationError):
            net.add_node("A", 2, cpd=[0.5, 0.6])

    def test_structure_queries(self, diamond):
        assert diamond.parents("X4") == ("X2", "X3")
        assert diamond.children("X1") == ("X2", "X3")
        assert diamond.n_states("X1") == 2
        assert diamond.nodes == ("X1", "X2", "X3", "X4")


class TestMarkovBlanket:
    def test_chain_blanket_is_neighbors(self, chain5):
        assert chain5.markov_blanket("X3") == frozenset({"X2", "X4"})
        assert chain5.markov_blanket("X1") == frozenset({"X2"})

    def test_diamond_blanket_includes_coparents(self, diamond):
        assert diamond.markov_blanket("X2") == frozenset({"X1", "X3", "X4"})


class TestDSeparation:
    def test_chain_separation(self, chain5):
        assert chain5.is_d_separated("X1", {"X5"}, {"X3"})
        assert not chain5.is_d_separated("X1", {"X5"}, set())

    def test_collider_opens_path(self, diamond):
        # X2 and X3 are d-separated given X1 but *not* given {X1, X4}.
        assert diamond.is_d_separated("X2", {"X3"}, {"X1"})
        assert not diamond.is_d_separated("X2", {"X3"}, {"X1", "X4"})

    def test_blanket_separates_everything(self, diamond):
        for node in diamond.nodes:
            blanket = diamond.markov_blanket(node)
            rest = set(diamond.nodes) - {node} - blanket
            assert diamond.is_d_separated(node, rest, blanket)


class TestQuilts:
    def test_trivial_quilt(self, chain5):
        quilt = chain5.trivial_quilt("X3")
        assert quilt.is_trivial
        assert quilt.card_nearby() == 5

    def test_quilt_from_set_valid(self, chain5):
        quilt = chain5.quilt_from_set("X3", {"X2", "X4"})
        assert quilt is not None
        assert quilt.nearby == frozenset({"X3"})
        assert quilt.remote == frozenset({"X1", "X5"})

    def test_quilt_from_set_one_sided(self, chain5):
        quilt = chain5.quilt_from_set("X1", {"X3"})
        assert quilt is not None
        assert quilt.nearby == frozenset({"X1", "X2"})
        assert quilt.remote == frozenset({"X4", "X5"})

    def test_invalid_separator_returns_none(self, diamond):
        # Removing {X1, X4} skeleton-disconnects X3 from X2, but conditioning
        # on the collider X4 opens the path X2 -> X4 <- X3: not a valid quilt.
        assert diamond.quilt_from_set("X2", {"X1", "X4"}) is None

    def test_separator_leaving_no_remote_is_valid(self, diamond):
        # Removing {X2} leaves X4 reachable through X3, so everything stays
        # "nearby" and the quilt is (vacuously) valid.
        quilt = diamond.quilt_from_set("X1", {"X2"})
        assert quilt is not None
        assert quilt.remote == frozenset()

    def test_distance_quilts_include_trivial(self, chain5):
        quilts = chain5.distance_quilts("X3")
        assert any(q.is_trivial for q in quilts)
        assert len(quilts) >= 2

    def test_distance_quilts_are_valid(self, diamond):
        for node in diamond.nodes:
            for quilt in diamond.distance_quilts(node):
                if quilt.remote:
                    assert diamond.is_d_separated(node, quilt.remote, quilt.quilt)


class TestInference:
    def test_joint_sums_to_one(self, diamond):
        _, probs = diamond.enumerate_joint()
        np.testing.assert_allclose(probs.sum(), 1.0)

    def test_joint_matches_factorization(self, diamond):
        assignments, probs = diamond.enumerate_joint()
        idx = assignments.index((1, 0, 1, 1))
        expected = 0.4 * 0.2 * 0.6 * 0.5
        np.testing.assert_allclose(probs[idx], expected)

    def test_marginal_of_root(self, diamond):
        np.testing.assert_allclose(diamond.marginal_of("X1"), [0.6, 0.4])

    def test_chain_marginal_matches_markov(self, chain5):
        from repro.distributions.markov import MarkovChain

        chain = MarkovChain([0.8, 0.2], [[0.9, 0.1], [0.4, 0.6]])
        np.testing.assert_allclose(chain5.marginal_of("X3"), chain.marginal(2), atol=1e-12)

    def test_conditional_table_normalizes(self, diamond):
        table = diamond.conditional_table(["X4"], {"X1": 0})
        np.testing.assert_allclose(sum(table.values()), 1.0)

    def test_conditional_zero_probability_event(self):
        net = DiscreteBayesianNetwork()
        net.add_node("A", 2, cpd=[1.0, 0.0])
        with pytest.raises(ValidationError):
            net.conditional_table(["A"], {"A": 1})

    def test_conditional_independence_via_quilt(self, chain5):
        """P(X5 | X3=v, X1=a) should not depend on a (X3 separates)."""
        t0 = chain5.conditional_table(["X5"], {"X3": 0, "X1": 0})
        t1 = chain5.conditional_table(["X5"], {"X3": 0, "X1": 1})
        for key in t0:
            np.testing.assert_allclose(t0[key], t1.get(key, 0.0), atol=1e-10)

    def test_joint_size(self, diamond):
        assert diamond.joint_size() == 16
