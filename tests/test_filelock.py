"""The portable inter-process lock, with the ``fcntl``-free fallback.

The bug this guards: ``JSONFileCache`` (and now the JSON ledger store)
silently ran with *no cross-process lock at all* on platforms without
``fcntl`` — concurrent writers could interleave read-modify-write cycles
and lose updates without any error.  ``InterProcessLock`` closes that hole
with an ``O_CREAT | O_EXCL`` lock-file fallback; these tests force the
fallback by monkeypatching the module-level ``fcntl`` name to ``None``
(resolved at acquire time for exactly this purpose) and hammer it."""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

import repro.utils.filelock as filelock
from repro.serving.cache import JSONFileCache
from repro.utils.filelock import InterProcessLock, LockTimeoutError


@pytest.fixture()
def no_fcntl(monkeypatch):
    """Force the O_EXCL lock-file fallback path."""
    monkeypatch.setattr(filelock, "fcntl", None)


# -- fallback mechanics ----------------------------------------------------
def test_fallback_mutual_exclusion_two_threads(no_fcntl, tmp_path):
    """Two threads with *separate* lock instances (no shared thread lock —
    the file is their only coordination) never overlap critical sections."""
    lock_path = tmp_path / "x.lock"
    active = 0
    overlaps = []
    done = []

    def worker() -> None:
        for _ in range(50):
            with InterProcessLock(lock_path, timeout=30.0, poll_interval=0.0005):
                nonlocal active
                active += 1
                if active > 1:
                    overlaps.append(active)
                active -= 1
        done.append(True)

    threads = [threading.Thread(target=worker) for _ in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(done) == 2
    assert overlaps == []
    # Released: the lock file is gone, a fresh acquire succeeds instantly.
    assert not lock_path.exists()


def test_fallback_times_out_instead_of_hanging(no_fcntl, tmp_path):
    lock_path = tmp_path / "held.lock"
    holder = InterProcessLock(lock_path)
    holder.acquire()
    try:
        waiter = InterProcessLock(
            lock_path, timeout=0.15, poll_interval=0.005, stale_ttl=300.0
        )
        start = time.monotonic()
        with pytest.raises(LockTimeoutError):
            waiter.acquire()
        assert time.monotonic() - start < 5.0
    finally:
        holder.release()


def test_fallback_breaks_stale_lock(no_fcntl, tmp_path):
    """A lock file left by a crashed holder is broken after stale_ttl."""
    lock_path = tmp_path / "stale.lock"
    lock_path.write_text("99999999\n")  # orphaned: no process owns it
    old = time.time() - 120
    os.utime(lock_path, (old, old))
    lock = InterProcessLock(
        lock_path, timeout=5.0, poll_interval=0.005, stale_ttl=60.0
    )
    start = time.monotonic()
    lock.acquire()
    lock.release()
    assert time.monotonic() - start < 5.0
    assert not lock_path.exists()


def test_fallback_respects_fresh_lock(no_fcntl, tmp_path):
    """A *fresh* foreign lock file is honored, not broken."""
    lock_path = tmp_path / "fresh.lock"
    lock_path.write_text("99999999\n")
    lock = InterProcessLock(
        lock_path, timeout=0.1, poll_interval=0.005, stale_ttl=300.0
    )
    with pytest.raises(LockTimeoutError):
        lock.acquire()
    assert lock_path.exists()


def test_parameter_validation():
    with pytest.raises(ValueError):
        InterProcessLock("x", timeout=0)
    with pytest.raises(ValueError):
        InterProcessLock("x", poll_interval=-1)
    with pytest.raises(ValueError):
        InterProcessLock("x", stale_ttl=0)


def test_flock_path_round_trip(tmp_path):
    """With fcntl present (POSIX CI), acquire/release work and re-acquire
    succeeds; the lock file persists by design under flock."""
    if filelock.fcntl is None:  # pragma: no cover - non-POSIX host
        pytest.skip("no fcntl on this platform")
    lock_path = tmp_path / "flock.lock"
    with InterProcessLock(lock_path):
        assert lock_path.exists()
    with InterProcessLock(lock_path):
        pass


# -- the cache-level regression -------------------------------------------
N_THREADS = 8
KEYS_PER_WRITER = 15


def test_cache_without_fcntl_loses_no_entries(no_fcntl, tmp_path):
    """The original bug, end to end: hammer ``JSONFileCache`` from many
    threads with ``fcntl`` unavailable.  Before the fallback existed this
    silently lost entries (last atomic replace wins); now every write
    cycle holds the O_EXCL lock-file and nothing is dropped."""
    path = tmp_path / "calibrations.json"
    errors: list = []

    def writer(prefix: str) -> None:
        try:
            # Separate backend instances: the file lock is the only
            # cross-instance coordination, exactly as across processes.
            backend = JSONFileCache(path)
            for i in range(KEYS_PER_WRITER):
                backend.put(f"{prefix}-{i}", {"scale": float(i)})
        except BaseException as error:  # pragma: no cover - regression only
            errors.append(error)

    threads = [
        threading.Thread(target=writer, args=(f"w{t}",)) for t in range(N_THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    store = json.loads(path.read_text())
    expected = {
        f"w{t}-{i}" for t in range(N_THREADS) for i in range(KEYS_PER_WRITER)
    }
    assert set(store) == expected
