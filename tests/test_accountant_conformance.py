"""Accountant conformance: one behavioral contract, two accountants.

Every test in this module runs identically against the linear
:class:`~repro.core.composition.CompositionAccountant` (Theorem 4.4) and
the :class:`~repro.core.accounting.RenyiAccountant` (Rényi-Pufferfish
strong composition).  The two differ *only* in arithmetic — what a release
costs and what the running total converts to; everything else (the atomic
check-then-record cycle, refusal payloads, validation, the same-quilt
signature condition, audit trail, pickling, thread safety) is the shared
:class:`~repro.core.accounting.BaseAccountant` contract this suite
certifies.  A behavior difference between the parameterizations is a
drift bug by definition.

Thread-safety cases follow ``tests/test_streaming_concurrency.py``: GIL
switch interval dropped, private per-thread actors, shared state only
through the accountant, and the concurrent outcome compared against a
sequential reference drain of the same budget.
"""

from __future__ import annotations

import pickle
import sys
import threading

import pytest

from repro.core.accounting import BUDGET_ATOL, RenyiAccountant
from repro.core.composition import CompositionAccountant
from repro.core.windowed import SlidingWindowAccountant
from repro.exceptions import BudgetExhaustedError, PrivacyParameterError

EPSILON = 0.5

#: (name, factory) — factories accept the shared BaseAccountant fields.
#: The sliding accountant conforms at a fixed clock (never advanced here);
#: its windowed semantics have their own suite in
#: tests/test_windowed_accounting.py.
FACTORIES = [
    ("linear", CompositionAccountant),
    ("renyi", lambda **kw: RenyiAccountant(delta=1e-5, **kw)),
    ("sliding", SlidingWindowAccountant),
]

IDS = [name for name, _ in FACTORIES]
MAKERS = [factory for _, factory in FACTORIES]


@pytest.fixture(params=MAKERS, ids=IDS)
def make(request):
    return request.param


@pytest.fixture(autouse=True)
def dense_interleavings():
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-5)
    yield
    sys.setswitchinterval(previous)


def _run_threads(targets) -> None:
    threads = [threading.Thread(target=t) for t in targets]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


def drain(accountant, epsilon: float = EPSILON, cap: int = 100_000) -> int:
    """Sequential reference: record until refused, return the count."""
    served = 0
    while served < cap:
        try:
            accountant.record(epsilon, quilt_signature=("q",))
            served += 1
        except BudgetExhaustedError:
            break
    return served


class TestRecordSemantics:
    def test_empty_accountant_reads(self, make):
        accountant = make(budget=4.0)
        assert len(accountant) == 0
        assert accountant.total_epsilon() == 0.0
        assert accountant.remaining() == pytest.approx(4.0)
        assert accountant.is_composable

    def test_record_returns_the_record_and_counts(self, make):
        accountant = make()
        record = accountant.record(
            EPSILON, mechanism="MQM", quilt_signature=("q",)
        )
        assert record.epsilon == EPSILON
        assert record.mechanism == "MQM"
        assert record.quilt_signature == ("q",)
        assert len(accountant) == 1
        assert accountant.records == [record]

    def test_record_many_is_n_records(self, make):
        accountant = make()
        records = accountant.record_many(7, EPSILON, quilt_signature=("q",))
        assert len(records) == 7
        assert len(accountant) == 7
        assert len(accountant.records) == 7

    def test_no_budget_means_unlimited(self, make):
        accountant = make()
        assert accountant.remaining() is None
        accountant.record_many(500, EPSILON, quilt_signature=("q",))
        assert len(accountant) == 500

    def test_spent_never_exceeds_budget(self, make):
        budget = 6.0
        accountant = make(budget=budget)
        served = drain(accountant)
        assert served > 0
        assert accountant.total_epsilon() <= budget + BUDGET_ATOL
        assert accountant.remaining() == pytest.approx(
            budget - accountant.total_epsilon()
        )

    def test_nothing_from_a_refused_call_is_recorded(self, make):
        accountant = make(budget=2 * EPSILON)
        accountant.record_many(2, EPSILON, quilt_signature=("q",))
        before = (
            len(accountant),
            accountant.total_epsilon(),
            list(accountant.records),
        )
        with pytest.raises(BudgetExhaustedError):
            accountant.record_many(50, EPSILON, quilt_signature=("q",))
        assert (
            len(accountant),
            accountant.total_epsilon(),
            list(accountant.records),
        ) == before


class TestRefusalPayload:
    def test_payload_names_the_accountant_class(self, make):
        accountant = make(budget=EPSILON)
        accountant.record(EPSILON, quilt_signature=("q",))
        with pytest.raises(BudgetExhaustedError) as excinfo:
            accountant.record(EPSILON, quilt_signature=("q",))
        error = excinfo.value
        assert error.accountant == type(accountant).__name__
        assert error.ledger()["accountant"] == type(accountant).__name__

    def test_payload_is_exact(self, make):
        budget = 5 * EPSILON
        accountant = make(budget=budget)
        drain(accountant)
        spent = accountant.total_epsilon()
        with pytest.raises(BudgetExhaustedError) as excinfo:
            accountant.record_many(3, EPSILON, quilt_signature=("q",))
        error = excinfo.value
        assert error.budget == budget
        assert error.spent == pytest.approx(spent)
        assert error.remaining == pytest.approx(max(0.0, budget - spent))
        assert error.requested == 3
        assert error.n_completed == 0
        assert set(error.ledger()) == {
            "budget",
            "spent",
            "remaining",
            "requested",
            "n_completed",
            "accountant",
        }


class TestValidation:
    @pytest.mark.parametrize("epsilon", [0.0, -1.0])
    def test_nonpositive_epsilon_raises(self, make, epsilon):
        with pytest.raises(PrivacyParameterError):
            make().record(epsilon)

    @pytest.mark.parametrize("n_releases", [0, -3])
    def test_nonpositive_count_raises(self, make, n_releases):
        with pytest.raises(PrivacyParameterError):
            make().record_many(n_releases, EPSILON)


class TestSignatureCondition:
    def test_mixed_signatures_are_refused(self, make):
        accountant = make()
        accountant.record(EPSILON, quilt_signature=("a",))
        with pytest.raises(PrivacyParameterError, match="Markov quilts"):
            accountant.record(EPSILON, quilt_signature=("b",))
        # The refused release was not recorded; the accountant still works.
        assert len(accountant) == 1
        accountant.record(EPSILON, quilt_signature=("a",))
        assert accountant.is_composable

    def test_total_epsilon_requires_composability(self, make):
        accountant = make()
        accountant.record(EPSILON, quilt_signature=("a",))
        # Force the inconsistent state the runtime check prevents, the way a
        # deserialized foreign trail could: composability must be re-checked
        # at read time, not only at record time.
        accountant._signatures.add(("b",))
        assert not accountant.is_composable
        with pytest.raises(PrivacyParameterError):
            accountant.total_epsilon()


class TestThreadSafety:
    def test_record_is_atomic_under_thread_hammering(self, make):
        """8 threads racing record(): exactly the sequential-reference count
        succeeds, everything else is refused, the ledger never over-spends."""
        budget = 40 * EPSILON
        reference = drain(make(budget=budget))
        accountant = make(budget=budget)
        succeeded = [0] * 8
        refused = [0] * 8

        def hammer(slot: int):
            for _ in range(20):
                try:
                    accountant.record(EPSILON, quilt_signature=("q",))
                    succeeded[slot] += 1
                except BudgetExhaustedError:
                    refused[slot] += 1

        _run_threads([(lambda s=slot: hammer(s)) for slot in range(8)])
        assert sum(succeeded) == reference
        assert sum(refused) == 8 * 20 - reference
        assert len(accountant) == reference
        assert accountant.total_epsilon() <= budget + BUDGET_ATOL

    def test_record_many_batches_race_atomically(self, make):
        budget = 30 * EPSILON
        accountant = make(budget=budget)
        recorded = [0] * 6

        def hammer(slot: int, batch: int):
            for _ in range(15):
                try:
                    accountant.record_many(
                        batch, EPSILON, quilt_signature=("q",)
                    )
                    recorded[slot] += batch
                except BudgetExhaustedError:
                    pass

        _run_threads(
            [(lambda s=slot: hammer(s, (slot % 3) + 1)) for slot in range(6)]
        )
        assert sum(recorded) == len(accountant)
        assert accountant.total_epsilon() <= budget + BUDGET_ATOL

    def test_concurrent_equal_epsilon_count_matches_sequential(self, make):
        """Chunked concurrent drains land on the same final count as the
        sequential drain — accounting is schedule-independent for
        equal-epsilon releases (both arithmetics are commutative in count)."""
        budget = 25 * EPSILON
        reference = drain(make(budget=budget))
        accountant = make(budget=budget)
        counts = [0] * 4

        def worker(slot: int):
            while True:
                try:
                    accountant.record(EPSILON, quilt_signature=("q",))
                    counts[slot] += 1
                except BudgetExhaustedError:
                    return

        _run_threads([(lambda s=slot: worker(s)) for slot in range(4)])
        assert sum(counts) == reference == len(accountant)


class TestPickling:
    def test_roundtrip_preserves_ledger_and_enforces(self, make):
        accountant = make(budget=3 * EPSILON)
        accountant.record(EPSILON, quilt_signature=("q",))
        clone = pickle.loads(pickle.dumps(accountant))
        assert len(clone) == 1
        assert clone.total_epsilon() == pytest.approx(
            accountant.total_epsilon()
        )
        clone.record(EPSILON, quilt_signature=("q",))
        clone.record(EPSILON, quilt_signature=("q",))
        with pytest.raises(BudgetExhaustedError):
            clone.record(EPSILON, quilt_signature=("q",))

    def test_getstate_drops_the_lock(self, make):
        accountant = make()
        accountant.record(EPSILON, quilt_signature=("q",))
        state = accountant.__getstate__()
        assert "_mutex" not in state
        # The clone rebuilds a working lock of its own.
        clone = pickle.loads(pickle.dumps(accountant))
        assert clone._mutex is not accountant._mutex
        with clone._mutex:
            pass

    def test_clone_signature_condition_survives(self, make):
        accountant = make()
        accountant.record(EPSILON, quilt_signature=("a",))
        clone = pickle.loads(pickle.dumps(accountant))
        with pytest.raises(PrivacyParameterError):
            clone.record(EPSILON, quilt_signature=("b",))


class TestAuditTrail:
    def test_audit_trail_off_keeps_aggregates_only(self, make):
        with_trail = make(budget=10 * EPSILON)
        without = make(budget=10 * EPSILON, audit_trail=False)
        n_with = drain(with_trail)
        n_without = drain(without)
        # Same enforcement either way; only the trail differs.
        assert n_with == n_without
        assert len(with_trail.records) == n_with
        assert without.records == []
        assert len(without) == n_without
        assert without.total_epsilon() == pytest.approx(
            with_trail.total_epsilon()
        )

    def test_trail_rebuild_roundtrips_through_records(self, make):
        """An accountant rebuilt from another's audit trail reports the
        same ledger (the restart-from-trail path)."""
        source = make()
        source.record_many(4, EPSILON, quilt_signature=("q",))
        rebuilt = make(records=list(source.records))
        assert len(rebuilt) == 4
        assert rebuilt.total_epsilon() == pytest.approx(
            source.total_epsilon()
        )
