"""Unit tests for the public Pufferfish verification utility."""

import numpy as np
import pytest

from repro.analysis.verification import (
    VerificationReport,
    output_grid,
    release_density,
    verify_pufferfish,
)
from repro.core.framework import Secret, entrywise_instantiation
from repro.core.models import FluCliqueModel, MarkovChainModel
from repro.core.mqm_chain import MQMExact
from repro.core.queries import CountQuery, StateFrequencyQuery
from repro.core.wasserstein import WassersteinMechanism
from repro.distributions.chain_family import FiniteChainFamily
from repro.distributions.markov import MarkovChain
from repro.exceptions import ValidationError


@pytest.fixture
def chain_instantiation():
    chain = MarkovChain([0.6, 0.4], [[0.8, 0.2], [0.3, 0.7]])
    return chain, entrywise_instantiation(4, 2, [MarkovChainModel(chain, 4)])


class TestVerifyPufferfish:
    def test_correctly_calibrated_mechanism_passes(self, chain_instantiation):
        chain, inst = chain_instantiation
        epsilon = 1.0
        query = StateFrequencyQuery(1, 4)
        mech = MQMExact(FiniteChainFamily([chain]), epsilon, max_window=4)
        scale = mech.noise_scale(query, np.zeros(4, dtype=int))
        report = verify_pufferfish(inst, query, scale, epsilon)
        assert report.satisfied
        assert report.empirical_epsilon <= epsilon * (1 + 1e-9)
        assert "SATISFIED" in report.summary()

    def test_under_calibrated_mechanism_fails(self, chain_instantiation):
        _, inst = chain_instantiation
        query = StateFrequencyQuery(1, 4)
        report = verify_pufferfish(inst, query, scale=query.lipschitz, epsilon=1.0)
        assert not report.satisfied
        assert "VIOLATED" in report.summary()

    def test_wasserstein_exact_calibration(self):
        """The Wasserstein mechanism's empirical epsilon approaches the
        target (its calibration is tight up to grid resolution)."""
        model = FluCliqueModel([3], [[0.3, 0.2, 0.2, 0.3]])
        inst = entrywise_instantiation(3, 2, [model])
        epsilon = 1.0
        mech = WassersteinMechanism(inst, epsilon)
        query = CountQuery()
        scale = mech.noise_scale(query, np.zeros(3, dtype=int))
        report = verify_pufferfish(inst, query, scale, epsilon, grid_points=601)
        assert report.satisfied
        assert report.empirical_epsilon > 0.3 * epsilon  # not vacuously loose

    def test_worst_pair_identified(self, chain_instantiation):
        _, inst = chain_instantiation
        query = StateFrequencyQuery(1, 4)
        report = verify_pufferfish(inst, query, scale=0.5, epsilon=5.0)
        worst = report.worst()
        assert worst.max_log_ratio == report.empirical_epsilon

    def test_rejects_vector_query(self, chain_instantiation):
        from repro.core.queries import RelativeFrequencyHistogram

        _, inst = chain_instantiation
        with pytest.raises(ValidationError):
            verify_pufferfish(inst, RelativeFrequencyHistogram(2, 4), 1.0, 1.0)

    def test_rejects_zero_scale(self, chain_instantiation):
        _, inst = chain_instantiation
        with pytest.raises(ValidationError):
            verify_pufferfish(inst, StateFrequencyQuery(1, 4), 0.0, 1.0)


class TestHelpers:
    def test_release_density_integrates_to_one(self, chain_instantiation):
        chain, inst = chain_instantiation
        query = StateFrequencyQuery(1, 4)
        grid = np.linspace(-6, 7, 20_001)
        density = release_density(inst.models[0], query, Secret(0, 0), 0.7, grid)
        assert np.trapezoid(density, grid) == pytest.approx(1.0, abs=1e-3)

    def test_output_grid_covers_range(self, chain_instantiation):
        _, inst = chain_instantiation
        query = StateFrequencyQuery(1, 4)
        grid = output_grid(inst, query, scale=1.0, grid_points=51)
        assert grid.min() < 0.0 and grid.max() > 1.0
        assert grid.size == 51

    def test_report_satisfied_boundary(self):
        report = VerificationReport(1.0, 1.0, [], 10)
        assert report.satisfied
