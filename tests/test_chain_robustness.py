"""Tests for the chain-level Theorem 2.4 convenience wrapper."""

import numpy as np
import pytest

from repro.core.robustness import chain_adversary_distance, effective_epsilon
from repro.distributions.chain_family import FiniteChainFamily
from repro.distributions.markov import MarkovChain


def chain(p0, p1, q0=0.6):
    return MarkovChain([q0, 1 - q0], [[p0, 1 - p0], [1 - p1, p1]])


class TestChainAdversaryDistance:
    def test_zero_for_member_belief(self):
        theta = chain(0.8, 0.7)
        family = FiniteChainFamily([theta])
        assert chain_adversary_distance(theta, family, 4) == pytest.approx(0.0, abs=1e-10)

    def test_grows_with_drift(self):
        family = FiniteChainFamily([chain(0.8, 0.7)])
        deltas = [
            chain_adversary_distance(chain(0.8 + d, 0.7 - d), family, 4)
            for d in (0.0, 0.05, 0.1)
        ]
        assert deltas[0] < deltas[1] < deltas[2]

    def test_infimum_over_family(self):
        tilde = chain(0.75, 0.72)
        near = chain(0.76, 0.72)
        far = chain(0.4, 0.4)
        d_near_only = chain_adversary_distance(tilde, FiniteChainFamily([near]), 4)
        d_both = chain_adversary_distance(tilde, FiniteChainFamily([far, near]), 4)
        assert d_both == pytest.approx(d_near_only)

    def test_accepts_plain_iterables(self):
        tilde = chain(0.8, 0.7)
        delta = chain_adversary_distance(tilde, [chain(0.82, 0.7)], 3)
        assert delta >= 0

    def test_effective_epsilon_integration(self):
        family = FiniteChainFamily([chain(0.8, 0.7)])
        delta = chain_adversary_distance(chain(0.85, 0.7), family, 4)
        assert effective_epsilon(1.0, delta) == pytest.approx(1.0 + 2 * delta)

    def test_prefix_monotone(self):
        """Longer prefixes can only reveal more disagreement."""
        family = FiniteChainFamily([chain(0.8, 0.7)])
        tilde = chain(0.85, 0.65)
        d3 = chain_adversary_distance(tilde, family, 3)
        d5 = chain_adversary_distance(tilde, family, 5)
        assert d5 >= d3 - 1e-12
