"""Tests for the serving layer: calibration cache, fingerprints, engine."""

import numpy as np
import pytest

from repro.baselines.group_dp import GroupDPMechanism
from repro.core.laplace import Calibration
from repro.core.mqm_chain import MQMApprox, MQMExact
from repro.core.queries import RelativeFrequencyHistogram, ScalarQuery, StateFrequencyQuery
from repro.data.datasets import TimeSeriesDataset
from repro.distributions.chain_family import FiniteChainFamily, IntervalChainFamily
from repro.distributions.markov import MarkovChain
from repro.exceptions import BudgetExhaustedError, ValidationError
from repro.serving import (
    CalibrationCache,
    InMemoryLRUCache,
    JSONFileCache,
    PrivacyEngine,
    cache_key,
    data_signature,
    warm_engines,
)


@pytest.fixture
def chain():
    return MarkovChain(
        [0.6, 0.4], [[0.85, 0.15], [0.2, 0.8]]
    ).with_stationary_initial()


@pytest.fixture
def family(chain):
    return FiniteChainFamily([chain])


@pytest.fixture
def data(chain):
    return chain.sample(200, rng=0)


@pytest.fixture
def query():
    return StateFrequencyQuery(1, 200)


class TestFingerprints:
    def test_same_family_same_key(self, family, data, query):
        a = MQMExact(family, 1.0, max_window=20)
        b = MQMExact(family, 1.0, max_window=20)
        assert cache_key(a, query, data) == cache_key(b, query, data)

    def test_equal_content_different_objects_same_key(self, chain, data, query):
        """Fingerprints are content hashes: rebuilding a numerically
        identical family from scratch yields the same key."""
        clone = MarkovChain(chain.initial.copy(), chain.transition.copy())
        a = MQMExact(FiniteChainFamily([chain]), 1.0, max_window=20)
        b = MQMExact(FiniteChainFamily([clone]), 1.0, max_window=20)
        assert cache_key(a, query, data) == cache_key(b, query, data)

    def test_family_change_invalidates(self, chain, data, query):
        other = MarkovChain([0.5, 0.5], [[0.7, 0.3], [0.3, 0.7]])
        a = MQMExact(FiniteChainFamily([chain]), 1.0, max_window=20)
        b = MQMExact(FiniteChainFamily([other]), 1.0, max_window=20)
        assert cache_key(a, query, data) != cache_key(b, query, data)

    def test_epsilon_change_invalidates(self, family, data, query):
        a = MQMExact(family, 1.0, max_window=20)
        b = MQMExact(family, 2.0, max_window=20)
        assert cache_key(a, query, data) != cache_key(b, query, data)

    def test_window_change_invalidates(self, family, data, query):
        a = MQMExact(family, 1.0, max_window=20)
        b = MQMExact(family, 1.0, max_window=40)
        assert cache_key(a, query, data) != cache_key(b, query, data)

    def test_query_change_invalidates(self, family, data):
        mech = MQMExact(family, 1.0, max_window=20)
        assert cache_key(mech, StateFrequencyQuery(1, 200), data) != cache_key(
            mech, StateFrequencyQuery(0, 200), data
        )

    def test_data_shape_change_invalidates(self, family, chain, query):
        mech = MQMExact(family, 1.0, max_window=20)
        assert cache_key(mech, query, chain.sample(200, rng=0)) != cache_key(
            mech, query, chain.sample(300, rng=0)
        )

    def test_data_signature_reads_segments(self):
        dataset = TimeSeriesDataset([np.zeros(5, dtype=int), np.zeros(3, dtype=int)], 2)
        assert data_signature(dataset) == ("segments", (3, 5))
        assert data_signature(np.zeros(8)) == ("array", 8)

    def test_interval_family_closed_form_fingerprint(self):
        a = IntervalChainFamily(0.2)
        b = IntervalChainFamily(0.2)
        c = IntervalChainFamily(0.3)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()

    def test_mqm_approx_fingerprint_is_mixing_parameters(self, family):
        a = MQMApprox(family, 1.0)
        b = MQMApprox(family, 1.0)
        assert a.calibration_fingerprint() == b.calibration_fingerprint()

    def test_lambda_queries_never_alias(self, family, data):
        """Two different lambdas must not share a cache entry."""
        mech = GroupDPMechanism(1.0)
        q1 = ScalarQuery(lambda x: float(x.sum()), 1.0)
        q2 = ScalarQuery(lambda x: float(x.mean()), 1.0)
        assert cache_key(mech, q1, data) != cache_key(mech, q2, data)

    def test_anonymous_tokens_survive_gc(self):
        """A collected lambda's signature must never be reissued to a new
        lambda (id() values recycle after GC; the counter tokens do not)."""
        import gc

        q1 = ScalarQuery(lambda x: 0.0, 1.0)
        sig1 = q1.signature()
        assert sig1 == q1.signature()  # stable for the same object
        del q1
        gc.collect()
        q2 = ScalarQuery(lambda x: 1.0, 1.0)
        assert q2.signature() != sig1

    def test_base_mechanism_fingerprints_by_instance(self, data, query):
        """Mechanisms without a content fingerprint never alias each other."""
        a = GroupDPMechanism(1.0)

        class Opaque(GroupDPMechanism):
            def calibration_fingerprint(self):
                return super(GroupDPMechanism, self).calibration_fingerprint()

        b = Opaque(1.0)
        c = Opaque(1.0)
        assert cache_key(b, query, data) != cache_key(c, query, data)
        assert cache_key(a, query, data) == cache_key(GroupDPMechanism(1.0), query, data)

    def test_instance_tokens_survive_gc(self, data, query):
        """A dead mechanism's cache key must never be reissued to a new
        instance (id() recycles after GC; the instance tokens do not)."""
        import gc

        class Opaque(GroupDPMechanism):
            def __init__(self, epsilon, sens):
                super().__init__(epsilon)
                self.sens = sens

            def noise_scale(self, query, data):
                return self.sens

            def calibration_fingerprint(self):
                return super(GroupDPMechanism, self).calibration_fingerprint()

        cache = CalibrationCache()
        first = Opaque(1.0, sens=5.0)
        cache.get_or_compute(first, query, data)
        del first
        gc.collect()
        second = Opaque(1.0, sens=100.0)
        calibration, hit = cache.get_or_compute(second, query, data)
        assert not hit
        assert calibration.scale == 100.0

    def test_content_fingerprints_memoized(self, family, data, query):
        """Repeated cache lookups must not re-hash/re-enumerate content."""
        from repro.core.framework import entrywise_instantiation
        from repro.core.models import MarkovChainModel

        assert family.fingerprint() is family.fingerprint()
        chain = MarkovChain([0.6, 0.4], [[0.85, 0.15], [0.2, 0.8]])
        assert chain.fingerprint() is chain.fingerprint()
        inst = entrywise_instantiation(3, 2, [MarkovChainModel(chain, 3)])
        assert inst.fingerprint() is inst.fingerprint()

    def test_bayesnet_fingerprint_invalidated_on_growth(self):
        from repro.distributions.bayesnet import DiscreteBayesianNetwork

        net = DiscreteBayesianNetwork()
        net.add_node("X1", 2, cpd=[0.7, 0.3])
        before = net.fingerprint()
        net.add_node("X2", 2, parents=["X1"], cpd=[[0.9, 0.1], [0.2, 0.8]])
        assert net.fingerprint() != before


class TestCalibrationCache:
    def test_miss_then_hit(self, family, data, query):
        cache = CalibrationCache()
        mech = MQMExact(family, 1.0, max_window=20)
        first, hit1 = cache.get_or_compute(mech, query, data)
        second, hit2 = cache.get_or_compute(mech, query, data)
        assert (hit1, hit2) == (False, True)
        assert first.scale == second.scale
        assert cache.hits == 1 and cache.misses == 1
        assert 0.0 < cache.hit_rate < 1.0

    def test_get_without_compute(self, family, data, query):
        cache = CalibrationCache()
        mech = MQMExact(family, 1.0, max_window=20)
        assert cache.get(mech, query, data) is None
        cache.get_or_compute(mech, query, data)
        cached = cache.get(mech, query, data)
        assert isinstance(cached, Calibration)

    def test_lru_eviction(self):
        backend = InMemoryLRUCache(max_entries=2)
        backend.put("a", {"v": 1})
        backend.put("b", {"v": 2})
        backend.get("a")  # refresh a; b becomes LRU
        backend.put("c", {"v": 3})
        assert backend.get("a") == {"v": 1}
        assert backend.get("b") is None
        assert backend.get("c") == {"v": 3}
        assert len(backend) == 2

    def test_lru_validates_capacity(self):
        with pytest.raises(ValidationError):
            InMemoryLRUCache(max_entries=0)

    def test_json_backend_round_trip(self, tmp_path, family, data, query):
        path = tmp_path / "cache.json"
        mech = MQMExact(family, 1.0, max_window=20)
        first = CalibrationCache(JSONFileCache(path))
        calibration, hit = first.get_or_compute(mech, query, data)
        assert not hit

        fresh_mech = MQMExact(family, 1.0, max_window=20)
        second = CalibrationCache(JSONFileCache(path))
        restored, hit = second.get_or_compute(fresh_mech, query, data)
        assert hit
        assert restored.scale == calibration.scale
        assert restored.mechanism == "MQMExact"

    def test_json_backend_warm_starts_mechanism(self, tmp_path, family, data, query):
        """A disk hit restores the mechanism's per-length sigma table, so
        even direct sigma_max calls skip the quilt search."""
        path = tmp_path / "cache.json"
        mech = MQMExact(family, 1.0, max_window=20)
        CalibrationCache(JSONFileCache(path)).get_or_compute(mech, query, data)

        fresh = MQMExact(family, 1.0, max_window=20)
        assert fresh._sigma_cache == {}
        CalibrationCache(JSONFileCache(path)).get_or_compute(fresh, query, data)
        assert fresh._sigma_cache == mech._sigma_cache

    def test_json_backend_rejects_garbage(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("not json at all {{{")
        with pytest.raises(ValidationError):
            JSONFileCache(path)
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValidationError):
            JSONFileCache(path)

    def test_clear(self, tmp_path):
        backend = JSONFileCache(tmp_path / "cache.json")
        backend.put("k", {"v": 1})
        backend.clear()
        assert len(backend) == 0

    def test_json_backend_merges_concurrent_writers(self, tmp_path):
        """Two backends over one file must accumulate each other's entries
        rather than clobbering (last-writer-wins would lose calibrations)."""
        path = tmp_path / "cache.json"
        writer_a = JSONFileCache(path)
        writer_b = JSONFileCache(path)  # loaded before A writes anything
        writer_a.put("a", {"v": 1})
        writer_b.put("b", {"v": 2})  # flush must pick up A's entry from disk

        fresh = JSONFileCache(path)
        assert fresh.get("a") == {"v": 1}
        assert fresh.get("b") == {"v": 2}


class TestPrivacyEngine:
    def test_release_matches_mechanism(self, family, data, query):
        mech = MQMExact(family, 1.0, max_window=20)
        engine = PrivacyEngine(mech)
        release = engine.release(data, query, rng=3)
        direct = MQMExact(family, 1.0, max_window=20).release(data, query, rng=3)
        assert release.value == direct.value
        assert release.noise_scale == direct.noise_scale

    def test_batched_equals_sequential(self, family, data, query):
        """One vectorized draw is bit-identical to sequential releases from
        the same generator state."""
        mech = MQMExact(family, 1.0, max_window=20)
        engine = PrivacyEngine(mech)
        batch = engine.release_batch([(data, query)] * 8, rng=np.random.default_rng(11))

        reference = MQMExact(family, 1.0, max_window=20)
        gen = np.random.default_rng(11)
        sequential = [reference.release(data, query, gen) for _ in range(8)]
        assert [r.value for r in batch] == [r.value for r in sequential]

    def test_batched_vector_query_equals_sequential(self, family, chain):
        dataset = TimeSeriesDataset.from_sequence(chain.sample(120, rng=4), 2)
        hist = RelativeFrequencyHistogram(2, 120)
        engine = PrivacyEngine(MQMExact(family, 1.0, max_window=20))
        batch = engine.release_batch([(dataset, hist)] * 5, rng=np.random.default_rng(5))
        reference = MQMExact(family, 1.0, max_window=20)
        gen = np.random.default_rng(5)
        sequential = [reference.release(dataset, hist, gen) for _ in range(5)]
        for b, s in zip(batch, sequential):
            np.testing.assert_array_equal(b.value, s.value)

    def test_zero_scale_draws_no_noise(self, data):
        """Zero-scale coordinates consume no randomness, matching the
        sequential no-noise baseline behavior."""

        class NoNoise(GroupDPMechanism):
            def noise_scale(self, query, data):
                return 0.0

        engine = PrivacyEngine(NoNoise(1.0))
        query = StateFrequencyQuery(1, 200)
        releases = engine.release_batch([(data, query)] * 3, rng=0)
        for release in releases:
            assert release.value == release.true_value

    def test_calibration_cached_across_releases(self, family, data, query):
        engine = PrivacyEngine(MQMExact(family, 1.0, max_window=20))
        engine.release_repeated(data, query, 10)  # one lookup for the batch
        engine.release(data, query)
        assert engine.cache.misses == 1
        assert engine.cache.hits == 1
        assert engine.n_releases == 11

    def test_budget_enforced_atomically(self, family, data, query):
        engine = PrivacyEngine(
            MQMExact(family, 1.0, max_window=20), epsilon_budget=5.0
        )
        engine.release_repeated(data, query, 3)
        with pytest.raises(BudgetExhaustedError):
            engine.release_batch([(data, query)] * 3)
        # The refused batch recorded nothing; two more releases still fit.
        assert engine.spent_epsilon() == pytest.approx(3.0)
        engine.release_repeated(data, query, 2)
        assert engine.remaining_budget() == pytest.approx(0.0)
        with pytest.raises(BudgetExhaustedError):
            engine.release(data, query)

    def test_budget_exhaustion_is_typed(self, family, data, query):
        engine = PrivacyEngine(MQMExact(family, 1.0, max_window=20), epsilon_budget=0.5)
        with pytest.raises(BudgetExhaustedError):
            engine.release(data, query)

    def test_refused_batch_carries_partial_progress_payload(self, family, data, query):
        """A mid-deployment refusal reports exactly where the ledger stands:
        spent, remaining, what was asked, and that the atomic batch
        completed nothing."""
        engine = PrivacyEngine(
            MQMExact(family, 1.0, max_window=20), epsilon_budget=5.0
        )
        engine.release_repeated(data, query, 3)
        with pytest.raises(BudgetExhaustedError) as excinfo:
            engine.release_batch([(data, query)] * 4)
        error = excinfo.value
        assert error.budget == 5.0
        assert error.spent == pytest.approx(3.0)
        assert error.remaining == pytest.approx(2.0)
        assert error.requested == 4
        assert error.n_completed == 0
        assert error.ledger()["spent"] == error.spent
        # The streamed counterpart (n_completed = yields so far) is audited
        # in tests/test_streaming_properties.py.

    def test_stream_is_reachable_from_the_engine(self, family, data, query):
        """The streaming entry point: engine.stream() sessions share the
        engine's cache, budget, and counter (deep coverage lives in the
        test_streaming_* suites)."""
        engine = PrivacyEngine(
            MQMExact(family, 1.0, max_window=20), epsilon_budget=10.0
        )
        with engine.stream(data, query, rng=1, max_releases=4) as session:
            releases = list(session)
        assert len(releases) == 4
        assert engine.n_releases == 4
        assert engine.spent_epsilon() == pytest.approx(4.0)
        assert engine.cache.misses == 1

    def test_unlimited_budget(self, family, data, query):
        engine = PrivacyEngine(MQMExact(family, 1.0, max_window=20))
        engine.release_repeated(data, query, 50)
        assert engine.remaining_budget() is None
        assert engine.spent_epsilon() == pytest.approx(50.0)

    def test_empty_batch(self, family):
        engine = PrivacyEngine(MQMExact(family, 1.0, max_window=20))
        assert engine.release_batch([]) == []
        assert engine.n_releases == 0

    def test_release_repeated_validates(self, family, data, query):
        engine = PrivacyEngine(MQMExact(family, 1.0, max_window=20))
        with pytest.raises(ValidationError):
            engine.release_repeated(data, query, 0)

    def test_stats(self, family, data, query):
        engine = PrivacyEngine(
            MQMExact(family, 1.0, max_window=20), epsilon_budget=100.0
        )
        engine.release_repeated(data, query, 4)
        stats = engine.stats()
        assert stats["mechanism"] == "MQMExact"
        assert stats["n_releases"] == 4
        assert stats["cache_misses"] == 1
        assert stats["spent_epsilon"] == pytest.approx(4.0)
        assert stats["remaining_budget"] == pytest.approx(96.0)

    def test_shared_cache_across_engines(self, family, data, query):
        """Two engine replicas sharing one cache pay one calibration."""
        cache = CalibrationCache()
        first = PrivacyEngine(MQMExact(family, 1.0, max_window=20), cache=cache)
        second = PrivacyEngine(MQMExact(family, 1.0, max_window=20), cache=cache)
        first.release(data, query)
        second.release(data, query)
        assert cache.misses == 1
        assert cache.hits == 1

    def test_warm_engines_precalibrates(self, family, data, query):
        engine = PrivacyEngine(MQMExact(family, 1.0, max_window=20))
        warm_engines([engine], [(data, query)])
        assert engine.cache.misses == 1
        engine.release(data, query)
        assert engine.cache.misses == 1  # the release was a hit

    def test_works_with_mqm_approx(self, family, data, query):
        engine = PrivacyEngine(MQMApprox(family, 1.0), epsilon_budget=10.0)
        releases = engine.release_repeated(data, query, 5)
        assert len(releases) == 5
        assert all(r.mechanism == "MQMApprox" for r in releases)

    def test_mixed_query_batch(self, family, chain):
        dataset = TimeSeriesDataset.from_sequence(chain.sample(120, rng=4), 2)
        scalar = StateFrequencyQuery(1, 120)
        hist = RelativeFrequencyHistogram(2, 120)
        engine = PrivacyEngine(MQMExact(family, 1.0, max_window=20))
        releases = engine.release_batch(
            [(dataset, scalar), (dataset, hist), (dataset, scalar)], rng=0
        )
        assert isinstance(releases[0].value, float)
        assert np.asarray(releases[1].value).shape == (2,)
        assert engine.cache.misses == 2  # one per distinct query signature


class TestWassersteinThroughEngine:
    def test_wasserstein_calibration_cached(self):
        from repro.core.framework import entrywise_instantiation
        from repro.core.models import MarkovChainModel
        from repro.core.wasserstein import WassersteinMechanism

        chain = MarkovChain([0.6, 0.4], [[0.85, 0.15], [0.2, 0.8]])
        inst = entrywise_instantiation(4, 2, [MarkovChainModel(chain, 4)])
        query = StateFrequencyQuery(1, 4)
        data = np.zeros(4, dtype=int)

        engine = PrivacyEngine(WassersteinMechanism(inst, 1.0))
        engine.release_repeated(data, query, 3)  # one lookup for the batch
        assert engine.cache.misses == 1
        assert engine.cache.hits == 0

        # Equal-content instantiations share keys across engine replicas.
        replica = PrivacyEngine(WassersteinMechanism(inst, 1.0), cache=engine.cache)
        replica.release(data, query)
        assert engine.cache.misses == 1
        assert engine.cache.hits == 1

    def test_exported_state_excludes_lambda_bounds(self):
        """Serialized W bounds must skip process-local (lambda) signatures:
        their tokens mean nothing — or worse, something else — in another
        process."""
        from repro.core.framework import entrywise_instantiation
        from repro.core.models import MarkovChainModel
        from repro.core.wasserstein import WassersteinMechanism

        chain = MarkovChain([0.6, 0.4], [[0.85, 0.15], [0.2, 0.8]])
        inst = entrywise_instantiation(3, 2, [MarkovChainModel(chain, 3)])
        mech = WassersteinMechanism(inst, 1.0)
        named = StateFrequencyQuery(1, 3)
        anonymous = ScalarQuery(lambda x: float(x.mean()), 1.0)
        mech.wasserstein_distance_bound(named)
        mech.wasserstein_distance_bound(anonymous)

        state = mech.export_calibration_state()
        key_reprs = [key for key, _ in state["bounds"]]
        assert any("StateFrequencyQuery" in key for key in key_reprs)
        assert not any("'id'" in key for key in key_reprs)
