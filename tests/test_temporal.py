"""Temporal scenario networks: edits, exact retirement, incremental recal.

Certifies the :class:`~repro.distributions.temporal.TemporalNetwork`
contract:

* edit-log semantics — ``append_node`` / ``update_cpd`` / ``retire_window``
  each log a :class:`TemporalEdit` with the dirty set the recalibration
  rule consumes, and each eagerly retires the pre-edit engine fingerprint;
* **retirement exactness** — the rebuilt network's joint equals the old
  network's marginal over the survivors;
* **incremental recalibration bit-identity** — sigmas reused across an
  edit equal a from-scratch calibration of the edited network bit for bit,
  on every structured family (grid, hub-and-spoke, household blocks);
* **staleness** — edits re-fingerprint the network immediately (including
  after a pickle round-trip), so content-keyed caches (calibration cache,
  engine registry) can never serve a stale entry for the edited network.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.markov_quilt import MarkovQuiltMechanism
from repro.distributions import (
    DiscreteBayesianNetwork,
    RecalibrationReport,
    TemporalEdit,
    TemporalNetwork,
)
from repro.distributions.structured import (
    BlockQuiltGenerator,
    block_node,
    grid_network,
    household_blocks_network,
    hub_and_spoke_network,
    spoke_node,
)
from repro.distributions.temporal import MAX_RETIRE_TABLE
from repro.exceptions import ValidationError
from repro.inference import (
    InferenceEngine,
    engine_registry_size,
    invalidate_engine,
)

EPSILON = 0.5


def _chain_pair() -> TemporalNetwork:
    """Window 0: a -> b; window 1: c -> d hanging off b."""
    base = DiscreteBayesianNetwork()
    base.add_node("a", 2, cpd=[0.6, 0.4])
    base.add_node("b", 2, parents=("a",), cpd=[[0.9, 0.1], [0.2, 0.8]])
    temporal = TemporalNetwork(base)
    temporal.advance_window()
    temporal.append_node(
        "c", 2, parents=("b",), cpd=[[0.7, 0.3], [0.4, 0.6]]
    )
    temporal.append_node(
        "d", 3, parents=("c",), cpd=[[0.5, 0.3, 0.2], [0.1, 0.6, 0.3]]
    )
    return temporal


def _uniform_cpd(network, name: str) -> np.ndarray:
    k = network.n_states(name)
    return np.full(network.cpd(name).shape, 1.0 / k)


# -- edits and the log ------------------------------------------------------
def test_append_assigns_windows_and_logs():
    temporal = _chain_pair()
    assert temporal.nodes == ("a", "b", "c", "d")
    assert temporal.window == 1
    assert temporal.window_of("a") == 0
    assert temporal.window_of("d") == 1
    assert temporal.live_windows() == (0, 1)
    ops = [edit.op for edit in temporal.edit_log]
    assert ops == ["append", "append"]
    assert temporal.edit_log[0].dirty == frozenset({"c"})
    assert temporal.edit_log[0].window == 1


def test_update_cpd_logs_and_replaces():
    temporal = _chain_pair()
    temporal.update_cpd("b", [[0.5, 0.5], [0.5, 0.5]])
    assert temporal.edit_log[-1] == TemporalEdit(
        op="update_cpd",
        window=1,
        dirty=frozenset({"b"}),
        retired_fingerprint=temporal.edit_log[-1].retired_fingerprint,
    )
    np.testing.assert_allclose(temporal.network.cpd("b"), 0.5)


def test_update_cpd_validation():
    temporal = _chain_pair()
    with pytest.raises(ValidationError):
        temporal.update_cpd("ghost", [0.5, 0.5])
    with pytest.raises(ValidationError):  # wrong shape for a 2-parent-state node
        temporal.update_cpd("b", [0.5, 0.5])
    with pytest.raises(ValidationError):  # rows must be distributions
        temporal.update_cpd("a", [0.9, 0.9])
    with pytest.raises(ValidationError):
        temporal.update_cpd("a", [1.2, -0.2])


def test_clock_validation():
    temporal = _chain_pair()
    with pytest.raises(ValidationError):
        temporal.advance_window(0)
    with pytest.raises(ValidationError):
        temporal.window_of("ghost")


# -- retirement -------------------------------------------------------------
def test_retire_window_preserves_survivor_marginals():
    temporal = _chain_pair()
    old = temporal.network
    engine_before = InferenceEngine(old)
    marginal_c = engine_before.marginals_given(("c",), {})
    marginal_d = engine_before.marginals_given(("d",), {})
    joint_cd = engine_before.marginals_given(("c", "d"), {})

    retired = temporal.retire_window()
    assert retired == frozenset({"a", "b"})
    assert temporal.nodes == ("c", "d")
    assert temporal.live_windows() == (1,)
    assert temporal.edit_log[-1].op == "retire"
    # Frontier c (its parent b retired) is dirty; d's CPD is untouched.
    assert temporal.edit_log[-1].dirty == frozenset({"a", "b", "c"})

    engine_after = InferenceEngine(temporal.network)
    np.testing.assert_allclose(
        engine_after.marginals_given(("c",), {}), marginal_c, rtol=1e-10
    )
    np.testing.assert_allclose(
        engine_after.marginals_given(("d",), {}), marginal_d, rtol=1e-10
    )
    np.testing.assert_allclose(
        engine_after.marginals_given(("c", "d"), {}), joint_cd, rtol=1e-10
    )
    # d keeps its exact CPD object content — only the frontier was rebuilt.
    np.testing.assert_array_equal(
        temporal.network.cpd("d"), old.cpd("d")
    )


def test_retire_window_requires_two_live_windows():
    temporal = _chain_pair()
    temporal.retire_window()
    with pytest.raises(ValidationError, match="two live windows"):
        temporal.retire_window()


def test_retire_window_caps_the_frontier_table():
    base = DiscreteBayesianNetwork()
    k = 5
    base.add_node("root", k, cpd=np.full(k, 1.0 / k))
    temporal = TemporalNetwork(base)
    temporal.advance_window()
    transition = np.full((k, k), 1.0 / k)
    for i in range(9):  # 9 frontier nodes x 5 states -> 5^9 > MAX cells
        temporal.append_node(f"f{i}", k, parents=("root",), cpd=transition)
    assert k**9 > MAX_RETIRE_TABLE
    with pytest.raises(ValidationError, match="too wide"):
        temporal.retire_window()


def test_indefinite_stream_stays_bounded():
    """Append-advance-retire forever: node count and registry stay flat."""
    temporal = _chain_pair()
    for step in range(6):
        temporal.advance_window()
        tail = temporal.nodes[-1]
        k_parent = temporal.network.n_states(tail)
        temporal.append_node(
            f"n{step}", 2, parents=(tail,), cpd=np.full((k_parent, 2), 0.5)
        )
        temporal.retire_window()
        assert len(temporal.nodes) <= 4
    assert engine_registry_size() <= 64
    assert temporal.retired_engine_count >= 12  # one per append + retire


# -- incremental recalibration ----------------------------------------------
#: (name, make_net, make_gen (or None for default shells), max_radius,
#: edited node) — the edited node is a *sink* in each family, so its dirty
#: closure touches few candidate quilts and most sigmas must survive.
FAMILIES = [
    (
        "blocks",
        lambda: household_blocks_network(4, 4),
        lambda: BlockQuiltGenerator(
            tuple(tuple(block_node(i, j) for j in range(4)) for i in range(4))
        ),
        None,
        block_node(0, 3),
    ),
    (
        "grid",
        lambda: grid_network(4, 4),
        None,  # default distance shells, capped so far cells stay clean
        1,
        "g3_3",
    ),
    (
        "hub",
        lambda: hub_and_spoke_network(4, 3),
        # Shell-merging generators (HubQuiltGenerator et al.) propose a
        # shell containing the edited leaf for every node of a connected
        # graph, so full recomputation is the *correct* answer there;
        # capped default shells keep distant spokes' closures clean.
        None,
        1,
        spoke_node(0, 3),
    ),
]


@pytest.mark.parametrize(
    "make_net, make_gen, max_radius, edited", [f[1:] for f in FAMILIES],
    ids=[f[0] for f in FAMILIES],
)
def test_single_edit_recalibration_is_bit_identical(
    make_net, make_gen, max_radius, edited
):
    generator = make_gen() if make_gen is not None else None
    temporal = TemporalNetwork(make_net())
    mech_cold, report_cold = temporal.calibrated_mechanism(
        EPSILON, quilt_generator=generator, max_radius=max_radius
    )
    assert report_cold.cold
    assert report_cold.recomputed_nodes == len(temporal.nodes)

    temporal.update_cpd(edited, _uniform_cpd(temporal.network, edited))
    mech_warm, report_warm = temporal.calibrated_mechanism(
        EPSILON, quilt_generator=generator, max_radius=max_radius
    )
    assert not report_warm.cold
    assert report_warm.reused_nodes > 0
    assert report_warm.recomputed_nodes < report_warm.total_nodes

    fresh = MarkovQuiltMechanism(
        [temporal.network],
        EPSILON,
        quilt_generator=generator,
        max_radius=max_radius,
    )
    fresh.sigma_max()
    assert fresh._sigma_cache == mech_warm._sigma_cache


def test_noop_recalibration_reuses_everything():
    temporal = TemporalNetwork(household_blocks_network(3, 3))
    temporal.calibrated_mechanism(EPSILON)
    _, report = temporal.calibrated_mechanism(EPSILON)
    assert report.reused_nodes == report.total_nodes
    assert report.recomputed_nodes == 0
    assert report.reuse_fraction == 1.0
    assert report.edits_applied == 0


def test_distinct_epsilons_are_independent_memos():
    temporal = TemporalNetwork(household_blocks_network(2, 3))
    _, first = temporal.calibrated_mechanism(0.5)
    _, second = temporal.calibrated_mechanism(1.0)
    assert first.cold and second.cold
    _, warm = temporal.calibrated_mechanism(0.5)
    assert not warm.cold


def test_edit_invalidates_closure_touched_nodes_only():
    """Blocks are independent: an edit in block 0 recomputes at most that
    block; every other block's sigmas are cache hits."""
    temporal = TemporalNetwork(household_blocks_network(4, 4))
    generator = BlockQuiltGenerator(
        tuple(tuple(block_node(i, j) for j in range(4)) for i in range(4))
    )
    temporal.calibrated_mechanism(EPSILON, quilt_generator=generator)
    temporal.update_cpd(
        block_node(0, 0), _uniform_cpd(temporal.network, block_node(0, 0))
    )
    _, report = temporal.calibrated_mechanism(EPSILON, quilt_generator=generator)
    assert report.recomputed_nodes <= 4
    assert report.reused_nodes >= 12


def test_append_then_recalibrate_is_bit_identical():
    """A structural edit (append) changes candidate sets near the new node;
    survivors still replay bit-identically."""
    temporal = TemporalNetwork(hub_and_spoke_network(3, 2))
    temporal.calibrated_mechanism(EPSILON)
    temporal.advance_window()
    temporal.append_node(
        "s0_3", 2, parents=("s0_2",), cpd=[[0.8, 0.2], [0.3, 0.7]]
    )
    mech_warm, report = temporal.calibrated_mechanism(EPSILON)
    assert not report.cold
    fresh = MarkovQuiltMechanism([temporal.network], EPSILON)
    fresh.sigma_max()
    assert fresh._sigma_cache == mech_warm._sigma_cache


def test_retire_then_recalibrate_is_bit_identical():
    temporal = _chain_pair()
    temporal.calibrated_mechanism(EPSILON)
    temporal.retire_window()
    mech_warm, report = temporal.calibrated_mechanism(EPSILON)
    assert not report.cold
    fresh = MarkovQuiltMechanism([temporal.network], EPSILON)
    fresh.sigma_max()
    assert fresh._sigma_cache == mech_warm._sigma_cache


def test_recalibration_report_math():
    report = RecalibrationReport(
        total_nodes=10, reused_nodes=7, recomputed_nodes=3,
        edits_applied=1, cold=False,
    )
    assert report.reuse_fraction == pytest.approx(0.7)
    assert RecalibrationReport(0, 0, 0, 0, True).reuse_fraction == 0.0


# -- staleness: edits re-fingerprint immediately ----------------------------
def test_update_cpd_rehashes_the_network():
    temporal = _chain_pair()
    before = temporal.fingerprint()
    temporal.update_cpd("a", [0.5, 0.5])
    after = temporal.fingerprint()
    assert before != after
    # Content-keyed: an independently built network with the same content
    # lands on the same fingerprint.
    twin = DiscreteBayesianNetwork()
    twin.add_node("a", 2, cpd=[0.5, 0.5])
    twin.add_node("b", 2, parents=("a",), cpd=[[0.9, 0.1], [0.2, 0.8]])
    twin.add_node("c", 2, parents=("b",), cpd=[[0.7, 0.3], [0.4, 0.6]])
    twin.add_node("d", 3, parents=("c",), cpd=[[0.5, 0.3, 0.2], [0.1, 0.6, 0.3]])
    assert twin.fingerprint() == after


def test_pickle_roundtrip_then_edit_rehashes():
    """The fingerprint memo must not survive a pickle round-trip stale: a
    clone edited after rehydration re-hashes from content."""
    temporal = _chain_pair()
    before = temporal.fingerprint()
    clone: TemporalNetwork = pickle.loads(pickle.dumps(temporal))
    assert clone.fingerprint() == before
    clone.update_cpd("a", [0.5, 0.5])
    assert clone.fingerprint() != before
    assert temporal.fingerprint() == before  # the original is untouched
    # The rehydrated clone keeps recalibrating incrementally.
    mech, report = clone.calibrated_mechanism(EPSILON)
    fresh = MarkovQuiltMechanism([clone.network], EPSILON)
    fresh.sigma_max()
    assert fresh._sigma_cache == mech._sigma_cache


def test_stale_calibration_cache_entries_are_never_served():
    """The serving cache keys on the mechanism's content fingerprint, so an
    edited network can never hit the pre-edit entry."""
    import repro.core.queries as queries
    from repro.serving.cache import CalibrationCache

    temporal = _chain_pair()
    data = np.ones(len(temporal.nodes))
    query = queries.CountQuery()
    cache = CalibrationCache()
    mech_before = MarkovQuiltMechanism([temporal.network], EPSILON)
    _, was_hit = cache.get_or_compute(mech_before, query, data)
    assert not was_hit
    key_before = cache.key_for(mech_before, query, data)

    temporal.update_cpd("a", [0.5, 0.5])
    mech_after = MarkovQuiltMechanism([temporal.network], EPSILON)
    key_after = cache.key_for(mech_after, query, data)
    assert key_before != key_after
    _, was_hit = cache.get_or_compute(mech_after, query, data)
    assert not was_hit  # the pre-edit entry is invisible to the edited net


def test_edits_retire_the_pinned_engine():
    temporal = _chain_pair()
    fingerprint = temporal.fingerprint()
    temporal.network.inference_engine()  # pin a registry engine
    before = engine_registry_size()
    temporal.update_cpd("a", [0.5, 0.5])
    assert engine_registry_size() == before - 1
    assert temporal.retired_engine_count >= 1
    # Idempotent: invalidating an absent fingerprint reports False.
    assert invalidate_engine(fingerprint) is False
