"""Unit tests for the general Markov Quilt Mechanism (Algorithm 2)."""

import numpy as np
import pytest

from repro.core.markov_quilt import MarkovQuiltMechanism, max_influence
from repro.core.mqm_chain import chain_max_influence
from repro.core.queries import StateFrequencyQuery
from repro.distributions.bayesnet import DiscreteBayesianNetwork
from repro.distributions.markov import MarkovChain
from repro.exceptions import ValidationError

INITIAL = np.array([0.8, 0.2])
TRANSITION = np.array([[0.9, 0.1], [0.4, 0.6]])


@pytest.fixture
def chain_net():
    return DiscreteBayesianNetwork.chain(INITIAL, TRANSITION, 5)


@pytest.fixture
def markov_chain():
    return MarkovChain(INITIAL, TRANSITION)


class TestMaxInfluence:
    def test_trivial_quilt_is_zero(self, chain_net):
        assert max_influence([chain_net], chain_net.trivial_quilt("X3")) == 0.0

    def test_matches_chain_formula_two_sided(self, chain_net, markov_chain):
        """Enumeration (Definition 4.1) must agree with Eq. (5)."""
        quilt = chain_net.quilt_from_set("X3", {"X2", "X4"})
        by_enumeration = max_influence([chain_net], quilt)
        by_formula = chain_max_influence(markov_chain, 2, 1, 1)
        assert by_enumeration == pytest.approx(by_formula, abs=1e-10)

    def test_matches_chain_formula_one_sided(self, chain_net, markov_chain):
        quilt = chain_net.quilt_from_set("X3", {"X1"})
        by_enumeration = max_influence([chain_net], quilt)
        by_formula = chain_max_influence(markov_chain, 2, 2, None)
        assert by_enumeration == pytest.approx(by_formula, abs=1e-10)

    def test_influence_shrinks_with_distance(self, chain_net):
        near = chain_net.quilt_from_set("X3", {"X2", "X4"})
        far = chain_net.quilt_from_set("X3", {"X1", "X5"})
        assert max_influence([chain_net], far) < max_influence([chain_net], near)

    def test_supremum_over_thetas(self, chain_net):
        slow = DiscreteBayesianNetwork.chain(
            INITIAL, np.array([[0.99, 0.01], [0.04, 0.96]]), 5
        )
        quilt = chain_net.quilt_from_set("X3", {"X2", "X4"})
        single = max_influence([chain_net], quilt)
        both = max_influence([chain_net, slow], quilt)
        assert both >= single

    def test_independent_nodes_have_zero_influence(self):
        net = DiscreteBayesianNetwork()
        net.add_node("A", 2, cpd=[0.5, 0.5])
        net.add_node("B", 2, cpd=[0.3, 0.7])
        quilt = net.quilt_from_set("A", set())
        # B is remote with an empty quilt: influence must be 0.
        assert quilt is not None
        assert max_influence([net], quilt) == 0.0


class TestMechanism:
    def test_sigma_bounded_by_trivial(self, chain_net):
        mech = MarkovQuiltMechanism([chain_net], epsilon=1.0)
        assert mech.sigma_max() <= 5.0 / 1.0 + 1e-9

    def test_matches_mqm_exact_on_chain(self, chain_net, markov_chain):
        """Algorithm 2 with symmetric distance quilts can only do worse (or
        equal) than Algorithm 3's richer asymmetric quilt set."""
        from repro.core.mqm_chain import MQMExact
        from repro.distributions.chain_family import FiniteChainFamily

        eps = 2.0
        general = MarkovQuiltMechanism([chain_net], epsilon=eps)
        exact = MQMExact(FiniteChainFamily([markov_chain]), eps, max_window=5)
        assert exact.sigma_max(5) <= general.sigma_max() + 1e-9

    def test_high_epsilon_prefers_tight_quilts(self, chain_net):
        mech = MarkovQuiltMechanism([chain_net], epsilon=10.0)
        sigma, quilt = mech.sigma_for_node("X3")
        assert not quilt.is_trivial
        assert sigma < 5.0 / 10.0

    def test_low_epsilon_falls_back_to_trivial(self, chain_net):
        mech = MarkovQuiltMechanism([chain_net], epsilon=0.01)
        _, quilt = mech.sigma_for_node("X3")
        assert quilt.is_trivial

    def test_noise_scale_uses_lipschitz(self, chain_net):
        mech = MarkovQuiltMechanism([chain_net], epsilon=1.0)
        query = StateFrequencyQuery(1, 5)
        scale = mech.noise_scale(query, np.zeros(5, dtype=int))
        assert scale == pytest.approx(query.lipschitz * mech.sigma_max())

    def test_quilt_signature_stable(self, chain_net):
        a = MarkovQuiltMechanism([chain_net], epsilon=1.0)
        b = MarkovQuiltMechanism([chain_net], epsilon=1.0)
        assert a.quilt_signature() == b.quilt_signature()

    def test_custom_quilt_sets_get_trivial_added(self, chain_net):
        mech = MarkovQuiltMechanism(
            [chain_net],
            epsilon=0.5,
            quilt_sets={"X1": [chain_net.quilt_from_set("X1", {"X2"})]},
        )
        sigma, _ = mech.sigma_for_node("X1")
        assert np.isfinite(sigma)

    def test_mismatched_networks_rejected(self, chain_net):
        other = DiscreteBayesianNetwork.chain(INITIAL, TRANSITION, 4)
        with pytest.raises(ValidationError):
            MarkovQuiltMechanism([chain_net, other], epsilon=1.0)

    def test_quilt_sets_unknown_key_rejected(self, chain_net):
        """A key that is not a network node used to be silently baked into
        the calibration fingerprint; now it raises with the offending key."""
        with pytest.raises(ValidationError, match="X9"):
            MarkovQuiltMechanism(
                [chain_net],
                epsilon=1.0,
                quilt_sets={"X9": [chain_net.trivial_quilt("X1")]},
            )

    def test_quilt_sets_wrong_node_quilt_rejected(self, chain_net):
        """A quilt protecting a different node than its mapping key would
        calibrate noise for the wrong node; now it raises naming the key."""
        with pytest.raises(ValidationError, match="X1"):
            MarkovQuiltMechanism(
                [chain_net],
                epsilon=1.0,
                quilt_sets={"X1": [chain_net.quilt_from_set("X3", {"X2", "X4"})]},
            )

    def test_release_details(self, chain_net):
        mech = MarkovQuiltMechanism([chain_net], epsilon=1.0)
        release = mech.release(
            np.array([0, 1, 0, 0, 1]), StateFrequencyQuery(1, 5), rng=0
        )
        assert "sigma_max" in release.details
        assert release.details["worst_node"] in chain_net.nodes
