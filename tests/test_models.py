"""Unit tests for enumerable data models."""

import numpy as np
import pytest

from repro.core.framework import Secret
from repro.core.models import FluCliqueModel, MarkovChainModel, TabularDataModel
from repro.distributions.bayesnet import DiscreteBayesianNetwork
from repro.distributions.markov import MarkovChain
from repro.exceptions import EnumerationError, ValidationError


class TestTabularDataModel:
    def test_support_normalizes(self):
        model = TabularDataModel([(0,), (1,)], [0.25, 0.75])
        total = sum(p for _, p in model.support())
        np.testing.assert_allclose(total, 1.0)

    def test_secret_probability(self):
        model = TabularDataModel([(0, 0), (0, 1), (1, 1)], [0.5, 0.25, 0.25])
        assert model.secret_probability(Secret(0, 0)) == pytest.approx(0.75)
        assert model.secret_probability(Secret(1, 1)) == pytest.approx(0.5)

    def test_secret_probability_checks_index(self):
        model = TabularDataModel([(0,)], [1.0])
        with pytest.raises(ValidationError):
            model.secret_probability(Secret(3, 0))

    def test_conditioning(self):
        model = TabularDataModel([(0, 0), (0, 1), (1, 1)], [0.5, 0.25, 0.25])
        conditioned = model.conditioned_on(Secret(1, 1))
        rows = dict(conditioned.support())
        np.testing.assert_allclose(rows[(0, 1)], 0.5)
        np.testing.assert_allclose(rows[(1, 1)], 0.5)

    def test_conditioning_zero_probability(self):
        model = TabularDataModel([(0,)], [1.0])
        with pytest.raises(ValidationError):
            model.conditioned_on(Secret(0, 1))

    def test_rejects_duplicate_rows(self):
        with pytest.raises(ValidationError):
            TabularDataModel([(0,), (0,)], [0.5, 0.5])

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValidationError):
            TabularDataModel([(0,), (0, 1)], [0.5, 0.5])

    def test_output_distribution(self):
        model = TabularDataModel([(0, 0), (1, 1)], [0.5, 0.5])
        dist = model.output_distribution(lambda row: float(row.sum()))
        np.testing.assert_allclose(dist.atoms, [0.0, 2.0])

    def test_from_bayesnet(self):
        net = DiscreteBayesianNetwork.chain(
            np.array([0.8, 0.2]), np.array([[0.9, 0.1], [0.4, 0.6]]), 3
        )
        model = TabularDataModel.from_bayesnet(net)
        assert model.n_records == 3
        total = sum(p for _, p in model.support())
        np.testing.assert_allclose(total, 1.0)


class TestMarkovChainModel:
    @pytest.fixture
    def chain(self):
        return MarkovChain([0.8, 0.2], [[0.9, 0.1], [0.4, 0.6]])

    def test_support_sums_to_one(self, chain):
        model = MarkovChainModel(chain, 4)
        total = sum(p for _, p in model.support())
        np.testing.assert_allclose(total, 1.0)

    def test_secret_probability_matches_marginal(self, chain):
        model = MarkovChainModel(chain, 4)
        for t in range(4):
            for v in range(2):
                assert model.secret_probability(Secret(t, v)) == pytest.approx(
                    chain.marginal(t)[v]
                )

    def test_trajectory_probability(self, chain):
        model = MarkovChainModel(chain, 3)
        rows = dict(model.support())
        np.testing.assert_allclose(rows[(0, 0, 1)], 0.8 * 0.9 * 0.1)

    def test_zero_probability_trajectories_excluded(self):
        chain = MarkovChain([1.0, 0.0], [[1.0, 0.0], [0.5, 0.5]])
        model = MarkovChainModel(chain, 3)
        rows = dict(model.support())
        assert rows == {(0, 0, 0): pytest.approx(1.0)}

    def test_enumeration_guard(self, chain):
        with pytest.raises(EnumerationError):
            MarkovChainModel(chain, 64)

    def test_to_tabular_consistency(self, chain):
        model = MarkovChainModel(chain, 3)
        tab = model.to_tabular()
        assert tab.secret_probability(Secret(2, 1)) == pytest.approx(
            model.secret_probability(Secret(2, 1))
        )


class TestFluCliqueModel:
    @pytest.fixture
    def paper_model(self):
        """The Section 3.1 example: one clique of 4, symmetric count law."""
        return FluCliqueModel([4], [[0.1, 0.15, 0.5, 0.15, 0.1]])

    def test_conditional_tables_match_paper(self, paper_model):
        given0 = paper_model.conditional_count_distribution(Secret(0, 0))
        given1 = paper_model.conditional_count_distribution(Secret(0, 1))
        np.testing.assert_allclose(given0.probs_on(range(5)), [0.2, 0.225, 0.5, 0.075, 0.0])
        np.testing.assert_allclose(given1.probs_on(range(5)), [0.0, 0.075, 0.5, 0.225, 0.2])

    def test_support_consistent_with_count_distribution(self, paper_model):
        counts = {}
        for row, prob in paper_model.support():
            counts[sum(row)] = counts.get(sum(row), 0.0) + prob
        for j, expected in enumerate([0.1, 0.15, 0.5, 0.15, 0.1]):
            np.testing.assert_allclose(counts.get(j, 0.0), expected, atol=1e-12)

    def test_secret_probability_by_symmetry(self, paper_model):
        # E[N]/4 = (0.15 + 2*0.5 + 3*0.15 + 4*0.1)/4 = 0.5 by symmetry.
        assert paper_model.secret_probability(Secret(0, 1)) == pytest.approx(0.5)

    def test_exponential_cliques_of_section_2_2(self):
        model = FluCliqueModel.exponential_cliques([3], rate=2.0)
        weights = np.exp(2.0 * np.arange(4))
        np.testing.assert_allclose(model.count_distributions[0], weights / weights.sum())

    def test_multi_clique_independence(self):
        model = FluCliqueModel([2, 2], [[0.5, 0.0, 0.5], [0.25, 0.5, 0.25]])
        rows = dict(model.support())
        total = sum(rows.values())
        np.testing.assert_allclose(total, 1.0)
        # Clique 1 never has exactly one infected.
        assert all(sum(row[:2]) != 1 for row in rows)

    def test_total_count_distribution(self):
        model = FluCliqueModel([2, 1], [[0.25, 0.5, 0.25], [0.5, 0.5]])
        total = model.total_count_distribution()
        np.testing.assert_allclose(total.mean(), 1.0 + 0.5)

    def test_clique_size_validation(self):
        with pytest.raises(ValidationError):
            FluCliqueModel([2], [[0.5, 0.5]])  # needs 3 entries

    def test_index_out_of_range(self):
        model = FluCliqueModel([2], [[0.25, 0.5, 0.25]])
        with pytest.raises(ValidationError):
            model.secret_probability(Secret(5, 1))
