"""Regression tests against every number the paper works out by hand.

These pin the implementation to the published artifacts (E6-E9 in
DESIGN.md): the Section 3.1 flu example, the Section 4.3 composition
example, the Section 4.4 running example, and the Theorem 2.4 example.
"""

import numpy as np
import pytest

from repro import paperdata
from repro.core.framework import Secret, entrywise_instantiation
from repro.core.models import FluCliqueModel, TabularDataModel
from repro.core.mqm_chain import MQMApprox, MQMExact, chain_max_influence
from repro.core.queries import CountQuery
from repro.core.robustness import unconditional_distance
from repro.core.wasserstein import group_sensitivity, wasserstein_bound
from repro.distributions.chain_family import FiniteChainFamily
from repro.distributions.markov import MarkovChain


def running_example_chains():
    t1 = paperdata.RUNNING_EXAMPLE["theta1"]
    t2 = paperdata.RUNNING_EXAMPLE["theta2"]
    return (
        MarkovChain(t1["initial"], t1["transition"]),
        MarkovChain(t2["initial"], t2["transition"]),
    )


class TestFluExample:
    """Section 3.1: W = 2 while the group-DP sensitivity is 4."""

    @pytest.fixture
    def model(self):
        return FluCliqueModel([4], [paperdata.FLU_EXAMPLE["count_distribution"]])

    def test_conditional_tables(self, model):
        given0 = model.conditional_count_distribution(Secret(0, 0))
        given1 = model.conditional_count_distribution(Secret(0, 1))
        np.testing.assert_allclose(
            given0.probs_on(range(5)), paperdata.FLU_EXAMPLE["conditional_given_0"], atol=1e-12
        )
        np.testing.assert_allclose(
            given1.probs_on(range(5)), paperdata.FLU_EXAMPLE["conditional_given_1"], atol=1e-12
        )

    def test_wasserstein_bound(self, model):
        inst = entrywise_instantiation(4, 2, [model])
        assert wasserstein_bound(inst, CountQuery()) == pytest.approx(
            paperdata.FLU_EXAMPLE["wasserstein_bound"]
        )

    def test_group_dp_comparison(self, model):
        sens = group_sensitivity(CountQuery(), 2, 4, [[0, 1, 2, 3]])
        assert sens == pytest.approx(paperdata.FLU_EXAMPLE["group_dp_sensitivity"])
        inst = entrywise_instantiation(4, 2, [model])
        assert wasserstein_bound(inst, CountQuery()) < sens


class TestCompositionExample:
    """Section 4.3: the T=3 chain at eps=10."""

    CHAIN = MarkovChain(
        paperdata.COMPOSITION_EXAMPLE["initial"],
        paperdata.COMPOSITION_EXAMPLE["transition"],
    )
    EPS = paperdata.COMPOSITION_EXAMPLE["epsilon"]

    def influences(self):
        return {
            "trivial": chain_max_influence(self.CHAIN, 1, None, None),
            "left": chain_max_influence(self.CHAIN, 1, 1, None),
            "right": chain_max_influence(self.CHAIN, 1, None, 1),
            "both": chain_max_influence(self.CHAIN, 1, 1, 1),
        }

    def test_influences(self):
        computed = self.influences()
        for name, expected in paperdata.COMPOSITION_EXAMPLE["influences"].items():
            assert computed[name] == pytest.approx(expected, abs=1e-5), name

    def test_scores_and_active_quilt(self):
        cards = {"trivial": 3, "left": 2, "right": 2, "both": 1}
        computed = self.influences()
        scores = {
            name: cards[name] / (self.EPS - value) for name, value in computed.items()
        }
        for name, expected in paperdata.COMPOSITION_EXAMPLE["scores"].items():
            assert scores[name] == pytest.approx(expected, abs=1e-4), name
        assert min(scores, key=scores.get) == paperdata.COMPOSITION_EXAMPLE["active_quilt"]


class TestRunningExample:
    """Section 4.4: T=100, Theta = {theta1, theta2}, eps=1."""

    def test_stationary_distributions(self):
        theta1, theta2 = running_example_chains()
        np.testing.assert_allclose(
            theta1.stationary(), paperdata.RUNNING_EXAMPLE["stationary_theta1"], atol=1e-9
        )
        np.testing.assert_allclose(
            theta2.stationary(), paperdata.RUNNING_EXAMPLE["stationary_theta2"], atol=1e-9
        )

    def test_mqm_exact_sigma_per_theta(self):
        theta1, theta2 = running_example_chains()
        eps = paperdata.RUNNING_EXAMPLE["epsilon"]
        sigma1 = MQMExact(
            FiniteChainFamily([theta1]), eps, max_window=100, restrict_support=False
        ).sigma_max(100)
        sigma2 = MQMExact(FiniteChainFamily([theta2]), eps, max_window=100).sigma_max(100)
        assert sigma1 == pytest.approx(paperdata.RUNNING_EXAMPLE["sigma_theta1"], abs=2e-4)
        assert sigma2 == pytest.approx(paperdata.RUNNING_EXAMPLE["sigma_theta2"], abs=2e-4)

    def test_family_parameters(self):
        theta1, theta2 = running_example_chains()
        family = FiniteChainFamily([theta1, theta2])
        assert family.pi_min() == pytest.approx(
            paperdata.RUNNING_EXAMPLE["pi_min"], abs=1e-9
        )
        gap = min(chain.eigengap(reversible=False) for chain in family.chains())
        assert gap == pytest.approx(paperdata.RUNNING_EXAMPLE["eigengap_general"], abs=1e-9)

    def test_mqm_approx_uses_those_parameters(self):
        theta1, theta2 = running_example_chains()
        mech = MQMApprox(FiniteChainFamily([theta1, theta2]), 1.0, reversible=False)
        assert mech.pi_min == pytest.approx(0.2, abs=1e-9)
        assert mech.gap == pytest.approx(0.75, abs=1e-9)


class TestRobustnessExample:
    """Section 2.3: conditioning can increase max-divergence."""

    def test_unconditional_log90(self):
        theta = TabularDataModel([(0,), (1,), (2,)], paperdata.ROBUSTNESS_EXAMPLE["theta"])
        tilde = TabularDataModel(
            [(0,), (1,), (2,)], paperdata.ROBUSTNESS_EXAMPLE["theta_tilde"]
        )
        assert unconditional_distance(tilde, theta) == pytest.approx(
            np.log(paperdata.ROBUSTNESS_EXAMPLE["unconditional"])
        )

    def test_conditional_grows(self):
        cond_theta = TabularDataModel([(0,), (1,)], np.array([0.9, 0.05]) / 0.95)
        cond_tilde = TabularDataModel([(0,), (1,)], np.array([0.01, 0.95]) / 0.96)
        grown = unconditional_distance(cond_tilde, cond_theta)
        # Paper rounds to log 91.0962; the exact value is log 90.947.
        assert grown == pytest.approx(
            np.log(paperdata.ROBUSTNESS_EXAMPLE["conditional"]), abs=2e-3
        )
        assert grown > np.log(paperdata.ROBUSTNESS_EXAMPLE["unconditional"])
