"""Tests for the structured-graph scenario library and the quilt-generator
strategy layer (grids, hub-and-spoke, household blocks)."""

import pickle

import numpy as np
import pytest

from repro.core.markov_quilt import MarkovQuiltMechanism, max_influence
from repro.core.queries import CountQuery
from repro.distributions.structured import (
    HUB,
    BlockQuiltGenerator,
    GridQuiltGenerator,
    HubQuiltGenerator,
    block_node,
    certified_quilts,
    grid_network,
    grid_node,
    grid_scenario,
    household_blocks_network,
    household_blocks_scenario,
    hub_and_spoke_network,
    hub_and_spoke_scenario,
    noisy_or_cpd,
    spoke_node,
)
from repro.exceptions import ValidationError
from repro.parallel import ParallelCalibrator

EPSILONS = {"grid": 8.0, "hub": 6.0, "blocks": 2.0}


def small_scenarios():
    return (
        ("grid", grid_scenario(3, 3)),
        ("hub", hub_and_spoke_scenario(3, 2)),
        ("blocks", household_blocks_scenario(2, 3)),
    )


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
class TestBuilders:
    def test_noisy_or_cpd_rows_normalize(self):
        table = noisy_or_cpd(2, 0.1, 0.4)
        assert table.shape == (2, 2, 2)
        np.testing.assert_allclose(table.sum(axis=-1), 1.0)
        # More infected parents -> higher infection probability.
        assert table[0, 0, 1] < table[0, 1, 1] < table[1, 1, 1]

    def test_noisy_or_cpd_rejects_bad_probabilities(self):
        with pytest.raises(ValidationError):
            noisy_or_cpd(1, -0.1, 0.5)
        with pytest.raises(ValidationError):
            noisy_or_cpd(1, 0.1, 1.5)

    def test_grid_structure(self):
        net = grid_network(3, 4)
        assert len(net.nodes) == 12
        assert net.parents(grid_node(0, 0)) == ()
        assert set(net.parents(grid_node(2, 3))) == {grid_node(1, 3), grid_node(2, 2)}
        # Interior cells have degree 4 in the skeleton.
        assert len(net.undirected_neighbors(grid_node(1, 1))) == 4

    def test_hub_structure(self):
        net = hub_and_spoke_network(4, 3)
        assert len(net.nodes) == 13
        assert len(net.undirected_neighbors(HUB)) == 4
        assert net.parents(spoke_node(2, 1)) == (HUB,)
        assert net.parents(spoke_node(2, 3)) == (spoke_node(2, 2),)

    def test_hub_spread_decouples_first_hop(self):
        net = hub_and_spoke_network(2, 2, spread=0.6, hub_spread=0.1)
        first_hop = net.cpd(spoke_node(0, 1))
        within = net.cpd(spoke_node(0, 2))
        assert first_hop[1, 1] < within[1, 1]

    def test_blocks_are_disconnected_paths(self):
        net = household_blocks_network(3, 4)
        assert len(net.nodes) == 12
        assert net.parents(block_node(1, 0)) == ()
        assert net.parents(block_node(1, 2)) == (block_node(1, 1),)
        # Multi-component: not a path graph, even though each block is one.
        assert not net.is_path_graph()

    def test_builders_validate_sizes(self):
        with pytest.raises(ValidationError):
            grid_network(0, 3)
        with pytest.raises(ValidationError):
            hub_and_spoke_network(2, 0)
        with pytest.raises(ValidationError):
            household_blocks_network(0, 2)

    def test_scenarios_share_dag_across_theta(self):
        for _, scenario in small_scenarios():
            reference = scenario.reference
            assert len(scenario.networks) >= 2
            for network in scenario.networks:
                assert network.nodes == reference.nodes
            # Perturbed CPDs: the thetas are numerically distinct.
            fingerprints = {network.fingerprint() for network in scenario.networks}
            assert len(fingerprints) == len(scenario.networks)


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
class TestGenerators:
    @pytest.mark.parametrize("name,scenario", small_scenarios())
    def test_every_quilt_is_certified(self, name, scenario):
        """Each generated quilt is either trivial or re-derivable through
        the d-separation check — no generator bypasses Definition 4.2."""
        net = scenario.reference
        for node in net.nodes:
            quilts = scenario.quilt_generator(net, node)
            assert quilts[0].is_trivial
            assert sum(1 for q in quilts if q.is_trivial) == 1
            for quilt in quilts[1:]:
                assert quilt.node == node
                rebuilt = net.quilt_from_set(node, quilt.quilt)
                assert rebuilt == quilt

    @pytest.mark.parametrize("name,scenario", small_scenarios())
    def test_generators_superset_distance_shells(self, name, scenario):
        """The shells are merged in, which is what guarantees the
        never-worse property of the sigma comparison."""
        net = scenario.reference
        for node in net.nodes:
            generated = set(scenario.quilt_generator(net, node))
            for shell in net.distance_quilts(node):
                assert shell in generated

    @pytest.mark.parametrize("name,scenario", small_scenarios())
    def test_generators_are_picklable(self, name, scenario):
        clone = pickle.loads(pickle.dumps(scenario.quilt_generator))
        net = scenario.reference
        node = net.nodes[-1]
        assert clone(net, node) == scenario.quilt_generator(net, node)

    def test_grid_generator_proposes_bands_and_rings(self):
        net = grid_network(3, 3)
        generator = GridQuiltGenerator(3, 3)
        separators = {q.quilt for q in generator(net, grid_node(1, 1))}
        ring = frozenset(
            grid_node(r, c) for r in range(3) for c in range(3) if (r, c) != (1, 1)
        )
        assert ring in separators  # Chebyshev radius-1 ring
        assert frozenset(grid_node(0, c) for c in range(3)) in separators  # row band
        assert frozenset(grid_node(r, 0) for r in range(3)) in separators  # col band

    def test_grid_generator_rejects_foreign_names(self):
        net = grid_network(2, 2)
        with pytest.raises(ValidationError):
            GridQuiltGenerator(2, 2)(net, "not_a_cell")

    def test_hub_generator_uses_hub_as_separator(self):
        scenario = hub_and_spoke_scenario(3, 3)
        net = scenario.reference
        quilts = scenario.quilt_generator(net, spoke_node(0, 2))
        hub_only = next(q for q in quilts if q.quilt == frozenset({HUB}))
        # Cutting the hub leaves only the node's own spoke nearby.
        assert hub_only.nearby == frozenset(spoke_node(0, j) for j in (1, 2, 3))
        assert spoke_node(1, 1) in hub_only.remote

    def test_block_generator_empty_separator_dividend(self):
        scenario = household_blocks_scenario(3, 3)
        net = scenario.reference
        quilts = scenario.quilt_generator(net, block_node(0, 1))
        free = next(q for q in quilts if not q.quilt and not q.is_trivial)
        # No separator spent, yet every other block is remote.
        assert free.nearby == frozenset(block_node(0, j) for j in range(3))
        assert len(free.remote) == 6
        assert max_influence([net], free) == 0.0

    def test_certified_quilts_drops_non_separators(self):
        from repro.distributions.bayesnet import DiscreteBayesianNetwork

        # Collider A -> C <- B: conditioning on C *opens* the A-B path, so
        # {C} skeleton-separates A from B but fails d-separation — the
        # certification must drop it.
        net = DiscreteBayesianNetwork()
        net.add_node("A", 2, cpd=[0.5, 0.5])
        net.add_node("B", 2, cpd=[0.5, 0.5])
        net.add_node("C", 2, parents=["A", "B"], cpd=noisy_or_cpd(2, 0.1, 0.5))
        quilts = certified_quilts(net, "A", [{"C"}], merge_distance_shells=False)
        assert quilts == [net.trivial_quilt("A")]


# ----------------------------------------------------------------------
# Mechanism integration: the acceptance comparison
# ----------------------------------------------------------------------
class TestMechanismIntegration:
    @pytest.mark.parametrize("name,scenario", small_scenarios())
    def test_structured_never_worse_than_shells(self, name, scenario):
        epsilon = EPSILONS[name]
        structured = MarkovQuiltMechanism(
            scenario.networks, epsilon, quilt_generator=scenario.quilt_generator
        )
        baseline = MarkovQuiltMechanism(scenario.networks, epsilon)
        assert structured.sigma_max() <= baseline.sigma_max() + 1e-12
        # Per-node: the superset candidate sets dominate everywhere.
        for node in scenario.reference.nodes:
            assert (
                structured.sigma_for_node(node)[0]
                <= baseline.sigma_for_node(node)[0] + 1e-12
            )

    def test_blocks_strictly_improve(self):
        scenario = household_blocks_scenario(2, 3)
        structured = MarkovQuiltMechanism(
            scenario.networks, 2.0, quilt_generator=scenario.quilt_generator
        )
        baseline = MarkovQuiltMechanism(scenario.networks, 2.0)
        assert structured.sigma_max() < baseline.sigma_max() - 1e-9

    def test_single_theta_improvement_per_family(self):
        """Acceptance: for each family there is a theta (here: the
        reference network alone) where the structured generator calibrates
        no worse than the shells — strictly better for blocks."""
        for name, scenario in small_scenarios():
            theta = [scenario.reference]
            epsilon = EPSILONS[name]
            structured = MarkovQuiltMechanism(
                theta, epsilon, quilt_generator=scenario.quilt_generator
            )
            baseline = MarkovQuiltMechanism(theta, epsilon)
            assert structured.sigma_max() <= baseline.sigma_max() + 1e-12

    @pytest.mark.parametrize("name,scenario", small_scenarios())
    def test_parallel_calibration_bit_identical(self, name, scenario):
        """Acceptance: workers >= 2 sharded calibration matches serial
        exactly for every structured family."""
        epsilon = EPSILONS[name]
        query = CountQuery()
        data = np.zeros(len(scenario.reference.nodes), dtype=int)
        serial_mech = MarkovQuiltMechanism(
            scenario.networks, epsilon, quilt_generator=scenario.quilt_generator
        )
        serial = serial_mech.calibrate(query, data)
        sharded_mech = MarkovQuiltMechanism(
            scenario.networks, epsilon, quilt_generator=scenario.quilt_generator
        )
        calibrator = ParallelCalibrator(max_workers=2, min_parallel_cost=0.0)
        sharded = calibrator.calibrate(sharded_mech, query, data)
        assert calibrator.pool_runs == 1
        assert sharded.scale == serial.scale
        assert sharded.details == serial.details
        assert sharded_mech._sigma_cache == serial_mech._sigma_cache
        assert sharded_mech.quilt_signature() == serial_mech.quilt_signature()

    def test_shards_prune_per_node_and_strip_generator(self):
        scenario = household_blocks_scenario(2, 2)
        mechanism = MarkovQuiltMechanism(
            scenario.networks, 2.0, quilt_generator=scenario.quilt_generator
        )
        calibrator = ParallelCalibrator(max_workers=2)
        plan = calibrator.plan(
            mechanism, CountQuery(), np.zeros(4, dtype=int)
        )
        assert [shard.key for shard in plan] == list(mechanism.reference.nodes)
        for shard in plan:
            clone, node = shard.payload
            assert set(clone.quilt_sets) == {node}
            assert clone.quilt_sets[node] == mechanism.quilt_sets[node]
            assert clone.quilt_generator is None

    def test_unpicklable_generator_still_calibrates(self):
        """A closure generator can't cross a process boundary; pruned
        shards drop it, so the plan still pickles and pools."""
        scenario = household_blocks_scenario(2, 2)
        generator = lambda net, node: scenario.quilt_generator(net, node)  # noqa: E731
        serial = MarkovQuiltMechanism(
            scenario.networks, 2.0, quilt_generator=scenario.quilt_generator
        )
        wrapped = MarkovQuiltMechanism(
            scenario.networks, 2.0, quilt_generator=generator
        )
        calibrator = ParallelCalibrator(max_workers=2, min_parallel_cost=0.0)
        query = CountQuery()
        data = np.zeros(4, dtype=int)
        assert (
            calibrator.calibrate(wrapped, query, data).scale
            == serial.calibrate(query, data).scale
        )
        assert calibrator.pool_runs == 1


# ----------------------------------------------------------------------
# The quilt_generator= strategy parameter
# ----------------------------------------------------------------------
class TestStrategyParameter:
    def test_default_generation_unchanged(self):
        net = grid_network(2, 3)
        explicit = MarkovQuiltMechanism([net], 2.0)
        assert explicit.quilt_generator is None
        expected = {node: net.distance_quilts(node) for node in net.nodes}
        assert explicit.quilt_sets == expected

    def test_generator_and_quilt_sets_are_exclusive(self):
        scenario = grid_scenario(2, 2)
        net = scenario.reference
        with pytest.raises(ValidationError):
            MarkovQuiltMechanism(
                [net],
                2.0,
                quilt_sets={net.nodes[0]: []},
                quilt_generator=scenario.quilt_generator,
            )

    def test_generator_sets_enter_fingerprint(self):
        scenario = household_blocks_scenario(2, 2)
        structured = MarkovQuiltMechanism(
            scenario.networks, 2.0, quilt_generator=scenario.quilt_generator
        )
        baseline = MarkovQuiltMechanism(scenario.networks, 2.0)
        assert (
            structured.calibration_fingerprint()
            != baseline.calibration_fingerprint()
        )

    def test_generator_missing_trivial_gets_it_added(self):
        net = household_blocks_network(2, 2)

        def no_trivial(network, node):
            return [q for q in network.distance_quilts(node) if not q.is_trivial]

        mechanism = MarkovQuiltMechanism([net], 2.0, quilt_generator=no_trivial)
        for node in net.nodes:
            assert any(q.is_trivial for q in mechanism.quilt_sets[node])

    def test_generator_filing_wrong_node_rejected(self):
        net = grid_network(2, 2)

        def wrong_node(network, node):
            return [network.trivial_quilt(network.nodes[0])]

        with pytest.raises(ValidationError):
            MarkovQuiltMechanism([net], 2.0, quilt_generator=wrong_node)
