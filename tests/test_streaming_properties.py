"""Property-based invariants of streaming release sessions.

Stdlib-``random``-driven (no extra dependencies), mirroring
``tests/test_property_calibration.py``: each property is checked across a
deterministic sweep of seeded random instances — random chunk-size
schedules, random block sizes, random interleavings of multiple sessions.

Properties (each a contract of the streaming design, not a regression
value):

* **Prefix bit-identity** — a seeded session yields exactly the
  ``release_batch`` prefix of the same length, for every block size and
  every chunking schedule, for scalar and vector queries.
* **Ledger exactness** — the total spent epsilon equals the sum of the
  yields' epsilons, however the draws were chunked or interleaved across
  sessions (chunking is order- and size-invariant for the ledger).
* **No over-spend, ever** — under a finite budget, any interleaving of any
  number of sessions yields exactly ``floor(budget / eps)`` releases
  total, then every further draw raises
  :class:`~repro.exceptions.BudgetExhaustedError` with an exact
  ``spent`` / ``remaining`` / ``n_completed`` payload.
* **Close/exhaust semantics** — capped sessions stop at their cap, closed
  sessions stop immediately, and the stats ledger stays consistent
  throughout.
* **Accountant independence** — the bit-identity and chunk-invariance
  properties hold verbatim under the Rényi accountant (accounting never
  touches the noise stream), and on randomized schedules the Rényi stop
  index is never earlier than the linear one (the inf-order grid entry
  pins the converted total at or below the linear sum).
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.mqm_chain import MQMExact
from repro.core.queries import RelativeFrequencyHistogram, StateFrequencyQuery
from repro.distributions.chain_family import FiniteChainFamily
from repro.distributions.markov import MarkovChain
from repro.exceptions import BudgetExhaustedError, ValidationError
from repro.serving import PrivacyEngine

EPSILON = 1.0
LENGTH = 24
WINDOW = 8

SEEDS = range(8)


@pytest.fixture(scope="module")
def workload():
    chain = MarkovChain(
        [0.5, 0.5], [[0.6, 0.4], [0.4, 0.6]]
    ).with_stationary_initial()
    family = FiniteChainFamily([chain])
    data = chain.sample(LENGTH, rng=0)
    return family, data


def make_engine(family, **kwargs) -> PrivacyEngine:
    return PrivacyEngine(MQMExact(family, EPSILON, max_window=WINDOW), **kwargs)


def batch_values(family, data, query, n: int, seed: int) -> list:
    engine = make_engine(family)
    return [r.value for r in engine.release_batch([(data, query)] * n, rng=seed)]


def random_schedule(rnd: random.Random, total: int) -> list[int]:
    """A random partition of ``total`` draws into take() chunk sizes."""
    schedule = []
    remaining = total
    while remaining > 0:
        chunk = rnd.randint(1, min(remaining, 17))
        schedule.append(chunk)
        remaining -= chunk
    return schedule


#: Both accounting regimes; the streaming value contract is identical under
#: either (the accountant only gatekeeps, it never touches the noise).
ACCOUNTANTS = ["linear", "renyi"]


class TestPrefixBitIdentity:
    @pytest.mark.parametrize("accountant", ACCOUNTANTS)
    @pytest.mark.parametrize("block_size", [1, 3, 64, 1000])
    def test_stream_equals_batch_prefix_scalar(self, workload, block_size, accountant):
        family, data = workload
        query = StateFrequencyQuery(1, LENGTH)
        expected = batch_values(family, data, query, 40, seed=7)
        session = make_engine(family, accountant=accountant).stream(
            data, query, rng=7, block_size=block_size
        )
        streamed = [next(session).value for _ in range(40)]
        assert streamed == expected  # bit-for-bit, never approx

    @pytest.mark.parametrize("block_size", [1, 5, 64])
    def test_stream_equals_batch_prefix_vector(self, workload, block_size):
        family, data = workload
        query = RelativeFrequencyHistogram(2, LENGTH)
        engine = make_engine(family)
        expected = [
            r.value for r in engine.release_batch([(data, query)] * 25, rng=11)
        ]
        session = make_engine(family).stream(
            data, query, rng=11, block_size=block_size
        )
        for want in expected:
            got = next(session).value
            assert np.array_equal(got, want)

    def test_every_prefix_length_matches(self, workload):
        """The prefix property holds at every length, not just the final
        one: value i of the stream is value i of any longer batch."""
        family, data = workload
        query = StateFrequencyQuery(1, LENGTH)
        expected = batch_values(family, data, query, 30, seed=13)
        session = make_engine(family).stream(data, query, rng=13, block_size=4)
        for i in range(30):
            assert next(session).value == expected[i]

    @pytest.mark.parametrize("accountant", ACCOUNTANTS)
    def test_random_chunk_schedules_are_value_invariant(self, workload, accountant):
        family, data = workload
        query = StateFrequencyQuery(1, LENGTH)
        total = 50
        expected = batch_values(family, data, query, total, seed=17)
        for seed in SEEDS:
            rnd = random.Random(seed)
            session = make_engine(family, accountant=accountant).stream(
                data, query, rng=17, block_size=rnd.randint(1, 96)
            )
            streamed = []
            for chunk_size in random_schedule(rnd, total):
                chunk = session.take(chunk_size)
                assert len(chunk) == chunk_size
                streamed.extend(r.value for r in chunk)
            assert streamed == expected

    def test_capped_session_stops_generator_at_batch_boundary(self, workload):
        """A max_releases cap never draws noise past the cap, so a capped
        session consumes exactly the batch's randomness."""
        family, data = workload
        query = StateFrequencyQuery(1, LENGTH)
        expected = batch_values(family, data, query, 10, seed=19)
        gen = np.random.default_rng(19)
        engine = make_engine(family)
        with engine.stream(
            data, query, rng=gen, block_size=64, max_releases=10
        ) as session:
            assert [r.value for r in session] == expected
        # The generator sits exactly where the batch left it: the next draws
        # from a batch continuation agree with a fresh run of 10 + 5.
        continuation = make_engine(family).release_batch([(data, query)] * 5, rng=gen)
        full = batch_values(family, data, query, 15, seed=19)
        assert [r.value for r in continuation] == full[10:]


class TestLedgerInvariants:
    def test_spent_equals_sum_of_yield_epsilons(self, workload):
        family, data = workload
        query = StateFrequencyQuery(1, LENGTH)
        for seed in SEEDS:
            rnd = random.Random(100 + seed)
            total = rnd.randint(1, 60)
            engine = make_engine(family)
            session = engine.stream(data, query, rng=seed, block_size=rnd.randint(1, 32))
            yielded = 0
            for chunk_size in random_schedule(rnd, total):
                yielded += len(session.take(chunk_size))
            assert yielded == total
            assert engine.spent_epsilon() == pytest.approx(total * EPSILON)
            assert session.stats()["epsilon_streamed"] == pytest.approx(total * EPSILON)
            assert len(engine.accountant) == total

    def test_ledger_is_chunking_invariant(self, workload):
        """Two sessions draining the same count through different schedules
        leave identical ledgers."""
        family, data = workload
        query = StateFrequencyQuery(1, LENGTH)
        totals = []
        for seed in SEEDS:
            rnd = random.Random(200 + seed)
            engine = make_engine(family)
            session = engine.stream(data, query, rng=1, block_size=rnd.randint(1, 64))
            for chunk_size in random_schedule(rnd, 36):
                session.take(chunk_size)
            totals.append(
                (engine.spent_epsilon(), len(engine.accountant), engine.n_releases)
            )
        assert len(set(totals)) == 1
        assert totals[0] == (36.0, 36, 36)

    def test_stream_and_batch_share_one_ledger(self, workload):
        """Streamed and batched releases debit the same accountant: the
        composed guarantee counts both."""
        family, data = workload
        query = StateFrequencyQuery(1, LENGTH)
        engine = make_engine(family, epsilon_budget=20.0)
        engine.release_batch([(data, query)] * 8, rng=1)
        session = engine.stream(data, query, rng=2)
        assert len(session.take(7)) == 7
        assert engine.spent_epsilon() == pytest.approx(15.0)
        engine.release_batch([(data, query)] * 5, rng=3)
        assert engine.remaining_budget() == pytest.approx(0.0)
        with pytest.raises(BudgetExhaustedError):
            next(session)

    def test_random_interleavings_of_sessions_never_overspend(self, workload):
        family, data = workload
        query = StateFrequencyQuery(1, LENGTH)
        for seed in SEEDS:
            rnd = random.Random(300 + seed)
            budget_n = rnd.randint(5, 40)
            engine = make_engine(family, epsilon_budget=budget_n * EPSILON)
            sessions = [
                engine.stream(data, query, rng=s, block_size=rnd.randint(1, 16))
                for s in range(rnd.randint(2, 4))
            ]
            yielded = 0
            refusals = []
            live = list(sessions)
            while live:
                session = rnd.choice(live)
                try:
                    next(session)
                    yielded += 1
                except BudgetExhaustedError as error:
                    refusals.append(error)
                    live.remove(session)
            assert yielded == budget_n
            assert engine.spent_epsilon() == pytest.approx(budget_n * EPSILON)
            assert engine.spent_epsilon() <= engine.epsilon_budget + 1e-12
            # Every refusal carries the exact global ledger plus its own
            # session's completed count.
            for error in refusals:
                assert error.spent == pytest.approx(budget_n * EPSILON)
                assert error.remaining == pytest.approx(0.0)
                assert error.requested == 1
            assert sorted(e.n_completed for e in refusals) == sorted(
                s.n_yielded for s in sessions
            )


class TestRenyiNeverStopsEarlier:
    """The Rényi accountant's stop index is >= the linear one, always.

    Regression for the accountant swap: the inf entry in the order grid
    makes the converted Rényi total <= the linear sum of epsilons, so for
    any schedule the Rényi stream serves at least as many releases from
    the same budget.  Randomized budgets, block sizes, and chunkings.
    """

    def test_rdp_stop_index_never_earlier_on_random_schedules(self, workload):
        family, data = workload
        query = StateFrequencyQuery(1, LENGTH)

        def drain(accountant, rnd_seed: int, budget: float) -> int:
            rnd = random.Random(rnd_seed)
            engine = make_engine(
                family, epsilon_budget=budget, accountant=accountant
            )
            session = engine.stream(
                data, query, rng=1, block_size=rnd.randint(1, 32)
            )
            served = 0
            while True:
                try:
                    served += len(session.take(rnd.randint(1, 9)))
                    next(session)
                    served += 1
                except BudgetExhaustedError:
                    return served

        for seed in SEEDS:
            budget = random.Random(400 + seed).uniform(2.0, 30.0)
            linear_served = drain("linear", 400 + seed, budget)
            renyi_served = drain("renyi", 400 + seed, budget)
            assert renyi_served >= linear_served
            # Theorem 4.4 exactness for equal-epsilon schedules.
            assert linear_served == int(budget / EPSILON + 1e-12)


class TestBudgetExhaustedPayload:
    def test_stream_payload_is_exact(self, workload):
        family, data = workload
        query = StateFrequencyQuery(1, LENGTH)
        engine = make_engine(family, epsilon_budget=3.0)
        session = engine.stream(data, query, rng=1)
        assert len(session.take(3)) == 3
        with pytest.raises(BudgetExhaustedError) as excinfo:
            next(session)
        error = excinfo.value
        assert error.budget == 3.0
        assert error.spent == pytest.approx(3.0)
        assert error.remaining == pytest.approx(0.0)
        assert error.requested == 1
        assert error.n_completed == 3
        assert error.ledger() == {
            "budget": 3.0,
            "spent": error.spent,
            "remaining": error.remaining,
            "requested": 1,
            "n_completed": 3,
            "accountant": "CompositionAccountant",
        }
        # Nothing from the refused draw was recorded; the session remains
        # consistent and keeps refusing with the same ledger.
        assert engine.spent_epsilon() == pytest.approx(3.0)
        with pytest.raises(BudgetExhaustedError) as again:
            next(session)
        assert again.value.n_completed == 3

    def test_take_mid_chunk_exhaustion_returns_partial_then_raises(self, workload):
        """A chunk that outlives the budget returns the releases already
        debited; the refusal surfaces on the next draw, never silently."""
        family, data = workload
        query = StateFrequencyQuery(1, LENGTH)
        engine = make_engine(family, epsilon_budget=5.0)
        session = engine.stream(data, query, rng=1)
        partial = session.take(8)
        assert len(partial) == 5
        with pytest.raises(BudgetExhaustedError) as excinfo:
            session.take(1)
        assert excinfo.value.n_completed == 5
        assert engine.spent_epsilon() == pytest.approx(5.0)

    def test_batch_payload_reports_atomic_refusal(self, workload):
        family, data = workload
        query = StateFrequencyQuery(1, LENGTH)
        engine = make_engine(family, epsilon_budget=10.0)
        engine.release_batch([(data, query)] * 4, rng=1)
        with pytest.raises(BudgetExhaustedError) as excinfo:
            engine.release_batch([(data, query)] * 7, rng=2)
        error = excinfo.value
        assert error.budget == 10.0
        assert error.spent == pytest.approx(4.0)
        assert error.remaining == pytest.approx(6.0)
        assert error.requested == 7
        assert error.n_completed == 0  # batches are atomic: all or nothing
        assert engine.spent_epsilon() == pytest.approx(4.0)
        assert len(engine.accountant) == 4


class TestSessionLifecycle:
    def test_close_stops_iteration_and_is_idempotent(self, workload):
        family, data = workload
        query = StateFrequencyQuery(1, LENGTH)
        session = make_engine(family).stream(data, query, rng=1)
        session.take(5)
        stats = session.close()
        assert stats["closed"] is True and stats["n_yielded"] == 5
        assert session.closed
        with pytest.raises(StopIteration):
            next(session)
        assert session.take(3) == []
        assert session.close()["n_yielded"] == 5  # idempotent

    def test_context_manager_closes(self, workload):
        family, data = workload
        query = StateFrequencyQuery(1, LENGTH)
        with make_engine(family).stream(data, query, rng=1) as session:
            session.take(2)
        assert session.closed

    def test_exhaustion_at_max_releases(self, workload):
        family, data = workload
        query = StateFrequencyQuery(1, LENGTH)
        session = make_engine(family).stream(data, query, rng=1, max_releases=7)
        assert len(list(session)) == 7
        assert session.exhausted and not session.closed
        assert session.take(5) == []
        stats = session.stats()
        assert stats["exhausted"] is True and stats["n_yielded"] == 7

    def test_sessions_share_the_warm_calibration(self, workload):
        family, data = workload
        query = StateFrequencyQuery(1, LENGTH)
        engine = make_engine(family)
        first = engine.stream(data, query, rng=1)
        second = engine.stream(data, query, rng=2)
        first.take(3)
        second.take(3)
        assert engine.cache.misses == 1
        assert engine.cache.hits >= 1
        assert engine.n_releases == 6

    def test_stats_track_blocks_and_buffer(self, workload):
        family, data = workload
        query = StateFrequencyQuery(1, LENGTH)
        session = make_engine(family).stream(data, query, rng=1, block_size=10)
        session.take(25)
        stats = session.stats()
        assert stats["blocks_drawn"] == 3
        assert stats["noise_buffered"] == 5
        assert stats["block_size"] == 10

    def test_invalid_parameters_raise(self, workload):
        family, data = workload
        query = StateFrequencyQuery(1, LENGTH)
        engine = make_engine(family)
        with pytest.raises(ValidationError):
            engine.stream(data, query, block_size=0)
        with pytest.raises(ValidationError):
            engine.stream(data, query, max_releases=0)
        with pytest.raises(ValidationError):
            engine.stream(data, query, rng=1).take(0)


class TestRunnerIntegration:
    def test_run_streaming_trials_matches_streamed_errors(self, workload):
        from repro.analysis import run_streaming_trials

        family, data = workload
        query = StateFrequencyQuery(1, LENGTH)
        result = run_streaming_trials(
            MQMExact(family, EPSILON, max_window=WINDOW), data, query, 50, rng=5
        )
        assert result.n_trials == 50
        # The streamed path is the release_batch prefix, so the aggregated
        # errors are exactly the batch's.
        batch = make_engine(family).release_batch([(data, query)] * 50, rng=5)
        errors = np.asarray([r.l1_error() for r in batch])
        assert result.mean_l1 == pytest.approx(float(errors.mean()))
        assert result.std_l1 == pytest.approx(float(errors.std()))
        assert result.noise_scale > 0

    def test_run_streaming_trials_validates(self, workload):
        from repro.analysis import run_streaming_trials

        family, data = workload
        query = StateFrequencyQuery(1, LENGTH)
        mech = MQMExact(family, EPSILON, max_window=WINDOW)
        with pytest.raises(ValidationError):
            run_streaming_trials(mech, data, query, 0)
        with pytest.raises(ValidationError):
            run_streaming_trials(mech, data, query, 5, chunk_size=0)
