"""Sliding-window budget accounting: exact expiry, forever.

The windowed semantics on top of the shared BaseAccountant contract
(which ``tests/test_accountant_conformance.py`` certifies for the sliding
accountant at a fixed clock): releases are charged against the current
logical window, expiry reclaims their epsilon *exactly* — window ``k``'s
admission arithmetic is identical to window 0's, indefinitely — the clock
is monotone, and the state round-trips bit-identically through
``accountant_from_state``.  The service layers ride along: the
:class:`~repro.service.ledger.TenantLedger` windowed reclamation sweep
(clock advance + bucket expiry + reservation-TTL sweep in one store
transaction) and the ``/tenants/{tenant}/advance-window`` endpoint.
"""

from __future__ import annotations

import math
import pickle
import time

import pytest

from repro.core.accounting import accountant_from_state
from repro.core.windowed import SlidingWindowAccountant
from repro.exceptions import (
    BudgetExhaustedError,
    PrivacyParameterError,
    ValidationError,
)
from repro.service import create_app
from repro.service.ledger import TenantLedger
from repro.service.stores import InMemoryLedgerStore
from repro.service.testing import TestClient

BUDGET = 1.0
EPSILON = 0.25
PER_WINDOW = math.floor(BUDGET / EPSILON)  # 4


def drain(accountant, epsilon: float = EPSILON, cap: int = 10_000) -> int:
    served = 0
    while served < cap:
        try:
            accountant.record(epsilon)
            served += 1
        except BudgetExhaustedError:
            break
    return served


# -- windowed admission ----------------------------------------------------
def test_every_window_admits_floor_budget_over_eps_forever():
    """Expiry reclaims epsilon exactly, so an indefinite stream sustains
    floor(budget / eps) releases per window — no drift, ever."""
    accountant = SlidingWindowAccountant(budget=BUDGET, audit_trail=False)
    for window in range(60):
        assert drain(accountant) == PER_WINDOW, f"window {window}"
        stats = accountant.advance_window()
        assert stats["expired_releases"] == PER_WINDOW
        assert stats["reclaimed_epsilon"] == pytest.approx(BUDGET)
        assert stats["live_releases"] == 0
        assert stats["spent"] == 0.0


def test_window_span_keeps_trailing_windows_live():
    """With span 2, consecutive windows share the budget; a release only
    expires once the clock passes its window + span - 1."""
    accountant = SlidingWindowAccountant(budget=BUDGET, window_span=2)
    accountant.record_many(2, EPSILON)  # half the budget in window 0
    accountant.advance_window()
    # Window 0's charges are still live: only half the budget remains.
    assert drain(accountant) == 2
    stats = accountant.advance_window()
    # Window 0 (2 releases) expired; window 1's 2 releases stay live.
    assert stats["expired_releases"] == 2
    assert stats["live_releases"] == 2
    assert stats["reclaimed_epsilon"] == pytest.approx(2 * EPSILON)
    assert drain(accountant) == 2


def test_spent_is_live_count_times_worst_live_epsilon():
    """Theorem 4.4 over the live span: heterogeneous epsilons cost
    count * max(eps), and the max is over *live* windows only."""
    accountant = SlidingWindowAccountant(window_span=2)
    accountant.record(0.5)
    accountant.advance_window()
    accountant.record_many(3, 0.1)
    assert accountant.total_epsilon() == pytest.approx(4 * 0.5)
    accountant.advance_window()  # the 0.5 release expires
    assert accountant.total_epsilon() == pytest.approx(3 * 0.1)
    assert accountant.live_release_count() == 3


def test_refusal_counts_only_live_releases():
    accountant = SlidingWindowAccountant(budget=BUDGET)
    drain(accountant)
    with pytest.raises(BudgetExhaustedError) as excinfo:
        accountant.record(EPSILON)
    assert excinfo.value.spent == pytest.approx(BUDGET)
    accountant.advance_window()
    accountant.record(EPSILON)  # admitted again — the ledger emptied


# -- the logical clock -----------------------------------------------------
def test_clock_is_monotone():
    accountant = SlidingWindowAccountant()
    accountant.advance_to(5)
    assert accountant.window == 5
    with pytest.raises(PrivacyParameterError, match="monotone"):
        accountant.advance_to(4)
    with pytest.raises(PrivacyParameterError):
        accountant.advance_window(0)
    assert accountant.window == 5


def test_advance_to_jump_expires_everything_between():
    accountant = SlidingWindowAccountant(budget=BUDGET, window_span=3)
    accountant.record_many(PER_WINDOW, EPSILON)
    stats = accountant.advance_to(100)
    assert stats["expired_releases"] == PER_WINDOW
    assert stats["reclaimed_epsilon"] == pytest.approx(BUDGET)
    assert accountant.total_epsilon() == 0.0


def test_window_span_validation():
    with pytest.raises(PrivacyParameterError):
        SlidingWindowAccountant(window_span=0)


def test_preexisting_records_charge_the_initial_window():
    source = SlidingWindowAccountant()
    source.record_many(3, EPSILON)
    rebuilt = SlidingWindowAccountant(records=list(source.records))
    assert rebuilt.live_release_count() == 3
    assert rebuilt.total_epsilon() == pytest.approx(3 * EPSILON)
    rebuilt.advance_window()
    assert rebuilt.total_epsilon() == 0.0


# -- durability ------------------------------------------------------------
def test_state_roundtrip_is_bit_identical():
    accountant = SlidingWindowAccountant(budget=BUDGET, window_span=2)
    accountant.record_many(2, EPSILON)
    accountant.advance_window()
    accountant.record(0.125)
    state = accountant.state_dict()
    assert state["kind"] == "sliding"
    clone = accountant_from_state(state)
    assert isinstance(clone, SlidingWindowAccountant)
    assert clone.state_dict() == state
    assert clone.window == accountant.window
    assert clone.total_epsilon() == accountant.total_epsilon()
    # The clone enforces — and expires — exactly like the original.
    assert drain(clone) == drain(accountant)
    assert clone.advance_window() == accountant.advance_window()


def test_pickle_preserves_the_window_clock():
    accountant = SlidingWindowAccountant(budget=BUDGET)
    drain(accountant)
    accountant.advance_window()
    accountant.record(EPSILON)
    clone = pickle.loads(pickle.dumps(accountant))
    assert clone.window == 1
    assert clone.live_release_count() == 1
    assert drain(clone) == PER_WINDOW - 1


def test_unknown_state_kind_is_refused():
    state = SlidingWindowAccountant().state_dict()
    state["kind"] = "wat"
    with pytest.raises(PrivacyParameterError, match="sliding"):
        accountant_from_state(state)


# -- replay determinism ----------------------------------------------------
def test_identical_schedules_replay_bit_identically():
    """The clock is logical/injected: the same record/advance schedule
    produces the same admissions, refusals, and stats — no wall time."""

    def run() -> list:
        accountant = SlidingWindowAccountant(budget=BUDGET, window_span=2)
        trace: list = []
        for _ in range(10):
            trace.append(drain(accountant))
            trace.append(accountant.advance_window())
        trace.append(accountant.state_dict())
        return trace

    assert run() == run()


# -- the ledger's windowed reclamation sweep -------------------------------
@pytest.fixture()
def ledger():
    return TenantLedger(InMemoryLedgerStore(), "acme", reservation_ttl=60.0)


def test_ledger_sliding_tenant_sustains_floor_per_window(ledger):
    ledger.create(budget=BUDGET, accountant="sliding")
    for _ in range(5):
        for _ in range(PER_WINDOW):
            reservation = ledger.reserve(1, EPSILON)
            ledger.consume(reservation.reservation_id, epsilon=EPSILON)
        with pytest.raises(BudgetExhaustedError):
            ledger.reserve(1, EPSILON)
        stats = ledger.advance_window()
        assert stats["reclaimed_epsilon"] == pytest.approx(BUDGET)
        # Drained reservations hold no budget (reserved == consumed); the
        # sweep reclaims nothing from them.
        assert stats["reclaimed_releases"] == 0
    snapshot = ledger.snapshot()
    assert snapshot["reserved_releases"] == 0
    assert snapshot["spent_epsilon"] == 0.0
    assert snapshot["window"] == 5
    assert snapshot["window_span"] == 1
    assert snapshot["live_releases"] == 0


def test_ledger_advance_window_sweeps_stale_reservations(ledger):
    """The reclamation sweep is one transaction: clock advance, bucket
    expiry, and reservation-TTL reclamation land together — an indefinite
    stream can never strand a reservation behind the window clock."""
    ledger.create(budget=BUDGET, accountant="sliding")
    ledger.reserve(2, EPSILON)  # abandoned: never consumed
    reservation = ledger.reserve(1, EPSILON)
    ledger.consume(reservation.reservation_id, epsilon=EPSILON)
    stats = ledger.advance_window(now=time.time() + 61.0)
    assert stats["expired_reservations"] == 2
    assert stats["reclaimed_releases"] == 2
    assert stats["outstanding_reservations"] == 0
    assert stats["reclaimed_epsilon"] == pytest.approx(EPSILON)
    # The full budget is reservable again.
    assert ledger.reserve(PER_WINDOW, EPSILON).n_reserved == PER_WINDOW


def test_ledger_advance_window_absolute_and_validation(ledger):
    ledger.create(budget=BUDGET, accountant="sliding", window_span=2)
    stats = ledger.advance_window(window=7)
    assert stats["window"] == 7
    with pytest.raises(ValidationError, match="not both"):
        ledger.advance_window(steps=2, window=9)
    with pytest.raises(PrivacyParameterError, match="monotone"):
        ledger.advance_window(window=3)


def test_ledger_advance_window_requires_sliding_accountant(ledger):
    ledger.create(budget=BUDGET, accountant="linear")
    with pytest.raises(ValidationError, match="sliding"):
        ledger.advance_window()


# -- the HTTP surface ------------------------------------------------------
@pytest.fixture()
def client():
    app = create_app()
    yield TestClient(app)
    app.service.close()


def test_service_sliding_tenant_full_cycle(client):
    # hub-laplace charges epsilon=0.5 per release: budget 1.0 admits 2.
    created = client.post(
        "/tenants/acme", {"budget": 1.0, "accountant": "sliding"}
    ).json()
    assert created["accountant"] == "SlidingWindowAccountant"
    for window in range(3):
        served = client.post(
            "/tenants/acme/release", {"workload": "hub-laplace", "n": 2}
        )
        assert served.status == 200, f"window {window}"
        refused = client.post(
            "/tenants/acme/release", {"workload": "hub-laplace", "n": 1}
        )
        assert refused.status == 429
        advanced = client.post("/tenants/acme/advance-window", {})
        assert advanced.status == 200
        body = advanced.json()
        assert body["window"] == window + 1
        assert body["reclaimed_epsilon"] == pytest.approx(1.0)
        assert body["live_releases"] == 0
    snapshot = client.get("/tenants/acme").json()
    assert snapshot["window"] == 3
    assert snapshot["spent_epsilon"] == 0.0


def test_service_advance_window_refusals(client):
    assert client.post("/tenants/ghost/advance-window", {}).status == 404
    client.post("/tenants/acme", {"budget": 1.0, "accountant": "linear"})
    response = client.post("/tenants/acme/advance-window", {})
    assert response.status == 400
    assert "sliding" in response.json()["message"]
