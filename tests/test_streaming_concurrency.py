"""Concurrency hammering of streaming sessions and the budget ledger.

The double-spend race these tests target: two recorders that each read the
accountant's aggregates, each pass the budget check, and each append —
jointly exceeding the budget although neither alone would.
:class:`~repro.core.composition.CompositionAccountant` closes it by holding
an internal lock across the whole check-then-record cycle, and
:class:`~repro.serving.ReleaseSession` serializes its draw pipeline (debit,
block refill, buffer slice) under a session lock, so:

* two threads draining *one* session each receive distinct releases — the
  union is exactly the seeded batch prefix, nothing duplicated or dropped;
* two sessions (or a session racing ``release_batch``) sharing *one* engine
  budget never jointly over-spend, and every refusal carries an exact
  ledger;
* the raw accountant, hammered directly from many threads, records exactly
  the budgeted count.

The GIL switch interval is dropped to force dense interleavings (the
pattern of ``tests/test_cache_concurrency.py``: private actors per thread,
shared state only through the component under test).
"""

from __future__ import annotations

import sys
import threading

import pytest

from repro.core.composition import CompositionAccountant
from repro.core.mqm_chain import MQMExact
from repro.core.queries import StateFrequencyQuery
from repro.distributions.chain_family import FiniteChainFamily
from repro.distributions.markov import MarkovChain
from repro.exceptions import BudgetExhaustedError
from repro.serving import PrivacyEngine

EPSILON = 1.0
LENGTH = 24
WINDOW = 8


@pytest.fixture(autouse=True)
def dense_interleavings():
    """Force frequent GIL switches so the races have real opportunities."""
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-5)
    yield
    sys.setswitchinterval(previous)


@pytest.fixture(scope="module")
def workload():
    chain = MarkovChain(
        [0.5, 0.5], [[0.6, 0.4], [0.4, 0.6]]
    ).with_stationary_initial()
    family = FiniteChainFamily([chain])
    data = chain.sample(LENGTH, rng=0)
    query = StateFrequencyQuery(1, LENGTH)
    return family, data, query


def make_engine(family, **kwargs) -> PrivacyEngine:
    return PrivacyEngine(MQMExact(family, EPSILON, max_window=WINDOW), **kwargs)


def _run_threads(targets) -> None:
    barrier = threading.Barrier(len(targets))
    errors: list[BaseException] = []

    def wrap(fn):
        def runner():
            barrier.wait()
            try:
                fn()
            except BaseException as error:  # pragma: no cover - regression only
                errors.append(error)

        return runner

    threads = [threading.Thread(target=wrap(fn)) for fn in targets]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors


class TestSharedSession:
    def test_two_threads_drain_one_session_without_duplication(self, workload):
        family, data, query = workload
        total = 400
        engine = make_engine(family)
        session = engine.stream(
            data, query, rng=7, block_size=13, max_releases=total
        )
        collected: dict[int, list[float]] = {0: [], 1: []}

        def drain(slot: int):
            for release in session:
                collected[slot].append(release.value)

        _run_threads([lambda: drain(0), lambda: drain(1)])
        values = collected[0] + collected[1]
        assert len(values) == total
        assert session.exhausted
        # Each value was yielded exactly once, and the union is exactly the
        # seeded batch prefix (continuous noise: multisets match iff the
        # partition lost/duplicated nothing).
        expected = [
            r.value
            for r in make_engine(family).release_batch([(data, query)] * total, rng=7)
        ]
        assert sorted(values) == sorted(expected)
        assert engine.spent_epsilon() == pytest.approx(total * EPSILON)
        assert engine.n_releases == total
        # No assertion that both threads got a share: scheduling may let one
        # thread drain everything — that is the OS's choice, not a session
        # property.  Exactly-once delivery and the exact ledger are.

    def test_two_threads_with_budget_stop_at_exactly_the_budget(self, workload):
        family, data, query = workload
        budget_n = 150
        engine = make_engine(family, epsilon_budget=budget_n * EPSILON)
        session = engine.stream(data, query, rng=1, block_size=7)
        counts = {0: 0, 1: 0}
        refusals: list[BudgetExhaustedError] = []

        def drain(slot: int):
            while True:
                try:
                    next(session)
                    counts[slot] += 1
                except BudgetExhaustedError as error:
                    refusals.append(error)
                    return

        _run_threads([lambda: drain(0), lambda: drain(1)])
        assert counts[0] + counts[1] == budget_n
        assert engine.spent_epsilon() == pytest.approx(budget_n * EPSILON)
        assert len(engine.accountant) == budget_n
        for error in refusals:
            assert error.spent == pytest.approx(budget_n * EPSILON)
            assert error.remaining == pytest.approx(0.0)
            assert error.n_completed == budget_n  # session-level count


class TestSharedBudget:
    def test_two_sessions_sharing_one_budget_never_double_spend(self, workload):
        family, data, query = workload
        budget_n = 120
        engine = make_engine(family, epsilon_budget=budget_n * EPSILON)
        sessions = [
            engine.stream(data, query, rng=seed, block_size=11)
            for seed in (1, 2)
        ]
        counts = {0: 0, 1: 0}
        refusals: list[BudgetExhaustedError] = []

        def drain(slot: int):
            try:
                for _ in sessions[slot]:
                    counts[slot] += 1
            except BudgetExhaustedError as error:
                refusals.append(error)

        _run_threads([lambda: drain(0), lambda: drain(1)])
        assert counts[0] + counts[1] == budget_n
        assert engine.spent_epsilon() == pytest.approx(budget_n * EPSILON)
        assert engine.spent_epsilon() <= engine.epsilon_budget + 1e-12
        assert len(refusals) == 2
        assert sorted(e.n_completed for e in refusals) == sorted(counts.values())

    def test_stream_racing_release_batch_never_overspends(self, workload):
        family, data, query = workload
        budget_n = 100
        engine = make_engine(family, epsilon_budget=budget_n * EPSILON)
        engine.calibrate(query, data)
        session = engine.stream(data, query, rng=1, block_size=5)
        streamed = [0]
        batched = [0]

        def stream_side():
            while True:
                try:
                    next(session)
                    streamed[0] += 1
                except BudgetExhaustedError:
                    return

        def batch_side():
            while True:
                try:
                    batched[0] += len(
                        engine.release_batch([(data, query)] * 3, rng=2)
                    )
                except BudgetExhaustedError:
                    return

        _run_threads([stream_side, batch_side])
        total = streamed[0] + batched[0]
        # The stream drains any remainder the 3-at-a-time batch cannot fit.
        assert total == budget_n
        assert engine.spent_epsilon() == pytest.approx(budget_n * EPSILON)
        assert len(engine.accountant) == budget_n
        assert engine.n_releases == budget_n

    def test_many_engine_stream_calls_share_one_calibration(self, workload):
        """Concurrent session construction hits the cache, not the quilt
        search: one miss however many sessions race to open."""
        family, data, query = workload
        engine = make_engine(family)
        engine.calibrate(query, data)  # the one (warm-up) miss
        sessions: list = []
        lock = threading.Lock()

        def open_and_draw():
            session = engine.stream(data, query, rng=3, max_releases=5)
            drawn = list(session)
            with lock:
                sessions.append((session, drawn))

        _run_threads([open_and_draw] * 4)
        assert engine.cache.misses == 1
        assert all(len(drawn) == 5 for _, drawn in sessions)
        assert engine.n_releases == 20


class TestAccountantAtomicity:
    def test_record_is_atomic_under_thread_hammering(self):
        """8 threads racing record() against a budget of 100: exactly 100
        succeed, every other attempt is refused, the ledger never exceeds
        the budget (the check-then-record race record()'s lock closes)."""
        budget_n = 100
        accountant = CompositionAccountant(budget=float(budget_n))
        succeeded = [0] * 8
        refused = [0] * 8

        def hammer(slot: int):
            for _ in range(40):
                try:
                    accountant.record(EPSILON, quilt_signature=("q",))
                    succeeded[slot] += 1
                except BudgetExhaustedError:
                    refused[slot] += 1

        _run_threads([(lambda s=slot: hammer(s)) for slot in range(8)])
        assert sum(succeeded) == budget_n
        assert sum(refused) == 8 * 40 - budget_n
        assert len(accountant) == budget_n
        assert accountant.total_epsilon() == pytest.approx(float(budget_n))

    def test_record_many_batches_race_atomically(self):
        """Concurrent record_many batches of mixed sizes: every recorded
        batch is all-or-nothing and the total never exceeds the budget."""
        accountant = CompositionAccountant(budget=50.0)
        recorded = [0] * 6

        def hammer(slot: int, batch: int):
            for _ in range(30):
                try:
                    accountant.record_many(batch, EPSILON, quilt_signature=("q",))
                    recorded[slot] += batch
                except BudgetExhaustedError:
                    pass

        _run_threads(
            [(lambda s=slot: hammer(s, (slot % 3) + 1)) for slot in range(6)]
        )
        assert sum(recorded) == len(accountant)
        assert len(accountant) <= 50
        assert accountant.total_epsilon() <= 50.0 + 1e-12

    def test_accountant_pickles_without_its_lock(self):
        """The lock is an implementation detail: accountants survive
        pickling (state transfer) and keep enforcing afterwards."""
        import pickle

        accountant = CompositionAccountant(budget=3.0)
        accountant.record(EPSILON, quilt_signature=("q",))
        clone = pickle.loads(pickle.dumps(accountant))
        assert len(clone) == 1
        assert clone.total_epsilon() == pytest.approx(1.0)
        clone.record(EPSILON, quilt_signature=("q",))
        clone.record(EPSILON, quilt_signature=("q",))
        with pytest.raises(BudgetExhaustedError):
            clone.record(EPSILON, quilt_signature=("q",))
