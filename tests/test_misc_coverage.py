"""Coverage for small branches not exercised elsewhere: the exception
hierarchy, reporting formats, runner aggregates, and paperdata consistency."""

import numpy as np
import pytest

from repro import paperdata
from repro.analysis.reporting import Table, _format_cell
from repro.analysis.runner import TrialResult
from repro.exceptions import (
    EnumerationError,
    NotApplicableError,
    PrivacyParameterError,
    ReproError,
    ValidationError,
)


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (ValidationError, PrivacyParameterError, NotApplicableError, EnumerationError):
            assert issubclass(exc, ReproError)

    def test_validation_error_is_value_error(self):
        assert issubclass(ValidationError, ValueError)
        assert issubclass(PrivacyParameterError, ValueError)

    def test_runtime_flavours(self):
        assert issubclass(NotApplicableError, RuntimeError)
        assert issubclass(EnumerationError, RuntimeError)

    def test_catchable_as_repro_error(self):
        with pytest.raises(ReproError):
            raise NotApplicableError("n/a")


class TestCellFormatting:
    def test_none_is_na(self):
        assert _format_cell(None) == "N/A"

    def test_strings_pass_through(self):
        assert _format_cell("abc") == "abc"

    def test_zero(self):
        assert _format_cell(0.0) == "0"

    def test_scientific_for_extremes(self):
        assert "e" in _format_cell(1234567.0)
        assert "e" in _format_cell(0.00001)

    def test_plain_for_moderate(self):
        assert _format_cell(0.25) == "0.25"

    def test_infinity(self):
        assert _format_cell(float("inf")) == "inf"


class TestTrialResult:
    def test_str_contains_fields(self):
        result = TrialResult("MQM", 0.5, 0.1, 100, 0.02)
        text = str(result)
        assert "MQM" in text
        assert "100" in text


class TestPaperdataConsistency:
    """The recorded paper constants must be internally consistent."""

    def test_flu_conditionals_normalize(self):
        for key in ("conditional_given_0", "conditional_given_1"):
            np.testing.assert_allclose(sum(paperdata.FLU_EXAMPLE[key]), 1.0)

    def test_flu_conditionals_follow_from_count_law(self):
        """P(N=j|X=1) ∝ j*P(N=j), P(N=j|X=0) ∝ (4-j)*P(N=j)."""
        base = np.asarray(paperdata.FLU_EXAMPLE["count_distribution"])
        j = np.arange(5)
        given1 = base * j / 4
        given0 = base * (4 - j) / 4
        np.testing.assert_allclose(
            given1 / given1.sum(), paperdata.FLU_EXAMPLE["conditional_given_1"], atol=1e-12
        )
        np.testing.assert_allclose(
            given0 / given0.sum(), paperdata.FLU_EXAMPLE["conditional_given_0"], atol=1e-12
        )

    def test_composition_scores_follow_from_influences(self):
        cards = {"trivial": 3, "left": 2, "right": 2, "both": 1}
        eps = paperdata.COMPOSITION_EXAMPLE["epsilon"]
        for name, influence in paperdata.COMPOSITION_EXAMPLE["influences"].items():
            expected = cards[name] / (eps - influence)
            assert paperdata.COMPOSITION_EXAMPLE["scores"][name] == pytest.approx(
                expected, abs=1e-4
            )

    def test_running_example_transitions_are_stochastic(self):
        for key in ("theta1", "theta2"):
            matrix = np.asarray(paperdata.RUNNING_EXAMPLE[key]["transition"])
            np.testing.assert_allclose(matrix.sum(axis=1), [1.0, 1.0])

    def test_table_shapes(self):
        assert len(paperdata.TABLE1["columns"]) == 6
        for mech in ("DP", "GroupDP", "GK16", "MQMApprox", "MQMExact"):
            assert len(paperdata.TABLE1[mech]) == 6
        assert len(paperdata.TABLE3["epsilons"]) == 3
        for mech in ("GroupDP", "GK16", "MQMApprox", "MQMExact"):
            assert len(paperdata.TABLE3[mech]) == 3

    def test_table3_groupdp_is_analytic(self):
        """GroupDP on one chain: E[L1] = 2k/eps — the paper's values agree
        to within trial noise, pinning our harness's closed form."""
        k = paperdata.TABLE3["n_states"]
        for eps, reported in zip(paperdata.TABLE3["epsilons"], paperdata.TABLE3["GroupDP"]):
            assert reported == pytest.approx(2 * k / eps, rel=0.05)


class TestTableRendering:
    def test_empty_table_renders_header(self):
        table = Table("Empty", ["a", "b"])
        text = table.render()
        assert "Empty" in text
        assert "a" in text
