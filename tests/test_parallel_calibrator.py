"""Equivalence suite: parallel calibration is bit-identical to serial.

The contract of :class:`repro.parallel.ParallelCalibrator` is *exact*
reproduction of the serial calibration — scale, diagnostics, and the
mechanism's internal memo state — across MQMExact, MQMApprox, and the
Wasserstein Mechanism, over a grid of (T, state count, epsilon), including
the degenerate single-worker configuration and oversubscription (more
workers than shards).  Comparisons use ``==``, never ``pytest.approx``.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.baselines.dp import EntryDPMechanism
from repro.core.framework import entrywise_instantiation
from repro.core.models import MarkovChainModel
from repro.core.mqm_chain import MQMApprox, MQMExact
from repro.core.queries import ScalarQuery, StateFrequencyQuery
from repro.core.wasserstein import WassersteinMechanism
from repro.data.datasets import TimeSeriesDataset
from repro.distributions.chain_family import FiniteChainFamily
from repro.distributions.markov import MarkovChain
from repro.exceptions import ValidationError
from repro.parallel import ParallelCalibrator, as_calibrator
from repro.serving import CalibrationCache, JSONFileCache, PrivacyEngine


class CountingFactory:
    """Executor factory that counts pool constructions."""

    def __init__(self) -> None:
        self.calls = 0

    def __call__(self, n_workers: int) -> ProcessPoolExecutor:
        self.calls += 1
        return ProcessPoolExecutor(max_workers=n_workers)


def _forbidden_factory(n_workers: int):  # pragma: no cover - only on regression
    raise AssertionError("a pool was constructed where the serial fallback was required")


def _two_chains(n_states: int) -> FiniteChainFamily:
    rng = np.random.default_rng(n_states)
    members = []
    for _ in range(2):
        rows = rng.uniform(0.1, 1.0, size=(n_states, n_states))
        rows /= rows.sum(axis=1, keepdims=True)
        members.append(
            MarkovChain(np.full(n_states, 1.0 / n_states), rows).with_stationary_initial()
        )
    return FiniteChainFamily(members)


def _pooled(workers: int = 2, **kwargs) -> ParallelCalibrator:
    """A calibrator that always pools when it has >= 2 shards."""
    return ParallelCalibrator(max_workers=workers, min_parallel_cost=0.0, **kwargs)


@pytest.mark.parametrize(
    ("length", "n_states", "epsilon"),
    [(24, 2, 0.5), (40, 3, 1.0), (64, 2, 2.0)],
)
def test_mqm_exact_bit_identical_over_grid(length, n_states, epsilon):
    family = _two_chains(n_states)
    query = StateFrequencyQuery(1, length)
    data = np.zeros(length, dtype=int)
    serial_mech = MQMExact(family, epsilon, max_window=length)
    serial = serial_mech.calibrate(query, data)
    factory = CountingFactory()
    parallel_mech = MQMExact(family, epsilon, max_window=length)
    parallel = _pooled(executor_factory=factory).calibrate(parallel_mech, query, data)
    assert factory.calls == 1
    assert parallel.scale == serial.scale
    assert parallel.details == serial.details
    assert parallel_mech._sigma_cache == serial_mech._sigma_cache


def test_mqm_exact_non_stationary_start_bit_identical():
    chain = MarkovChain([0.9, 0.1], [[0.8, 0.2], [0.3, 0.7]])  # not stationary
    family = FiniteChainFamily([chain])
    query = StateFrequencyQuery(1, 24)
    data = np.zeros(24, dtype=int)
    serial = MQMExact(family, 1.0, max_window=24).calibrate(query, data)
    dataset = TimeSeriesDataset([np.zeros(24, dtype=int)], 2)
    parallel = _pooled().calibrate(
        MQMExact(family, 1.0, max_window=24), query, dataset
    )
    assert parallel.scale == serial.scale


def test_mqm_approx_multi_segment_bit_identical():
    family = _two_chains(3)
    lengths = [15, 25, 35]
    data = TimeSeriesDataset([np.zeros(n, dtype=int) for n in lengths], 3)
    query = StateFrequencyQuery(1, data.n_observations)
    serial_mech = MQMApprox(family, 1.0)
    serial = serial_mech.calibrate(query, data)
    parallel_mech = MQMApprox(family, 1.0)
    parallel = _pooled().calibrate(parallel_mech, query, data)
    assert parallel.scale == serial.scale
    assert parallel.details == serial.details
    assert parallel_mech._sigma_cache == serial_mech._sigma_cache


def test_wasserstein_bit_identical():
    chains = [
        MarkovChain([0.6, 0.4], [[0.85, 0.15], [0.2, 0.8]]),
        MarkovChain([0.5, 0.5], [[0.7, 0.3], [0.4, 0.6]]),
        MarkovChain([0.3, 0.7], [[0.5, 0.5], [0.25, 0.75]]),
    ]
    length = 5
    inst = entrywise_instantiation(
        length, 2, [MarkovChainModel(chain, length) for chain in chains]
    )
    query = StateFrequencyQuery(1, length)
    data = np.zeros(length, dtype=int)
    serial_mech = WassersteinMechanism(inst, 1.0)
    serial = serial_mech.calibrate(query, data)
    parallel_mech = WassersteinMechanism(inst, 1.0)
    parallel = _pooled().calibrate(parallel_mech, query, data)
    assert parallel.scale == serial.scale
    assert parallel.details == serial.details
    assert parallel_mech._bound_cache == serial_mech._bound_cache


def test_single_worker_is_inline_and_identical():
    """max_workers=1 (the degenerate configuration) must never construct a
    pool, and must still produce the exact serial calibration."""
    family = _two_chains(2)
    query = StateFrequencyQuery(1, 32)
    data = np.zeros(32, dtype=int)
    serial = MQMExact(family, 1.0, max_window=32).calibrate(query, data)
    calibrator = ParallelCalibrator(
        max_workers=1, min_parallel_cost=0.0, executor_factory=_forbidden_factory
    )
    parallel = calibrator.calibrate(MQMExact(family, 1.0, max_window=32), query, data)
    assert parallel.scale == serial.scale
    assert calibrator.serial_runs == 1 and calibrator.pool_runs == 0


def test_oversubscribed_workers_identical():
    """More workers than shards: pool sized down to the shard count, result
    unchanged."""
    family = _two_chains(2)  # 2 chains x 1 length = 2 shards
    query = StateFrequencyQuery(1, 40)
    data = np.zeros(40, dtype=int)
    serial = MQMExact(family, 1.0, max_window=40).calibrate(query, data)
    calibrator = _pooled(workers=8)
    parallel = calibrator.calibrate(MQMExact(family, 1.0, max_window=40), query, data)
    assert parallel.scale == serial.scale
    assert calibrator.pool_runs == 1


def test_small_payload_falls_back_to_inline():
    """Below min_parallel_cost the plan runs inline — same result, no pool."""
    family = _two_chains(2)
    query = StateFrequencyQuery(1, 20)
    data = np.zeros(20, dtype=int)
    calibrator = ParallelCalibrator(
        max_workers=4, min_parallel_cost=1e9, executor_factory=_forbidden_factory
    )
    serial = MQMExact(family, 1.0, max_window=20).calibrate(query, data)
    parallel = calibrator.calibrate(MQMExact(family, 1.0, max_window=20), query, data)
    assert parallel.scale == serial.scale
    assert calibrator.serial_runs == 1


def test_unpicklable_query_falls_back_to_inline():
    chain = MarkovChain([0.6, 0.4], [[0.85, 0.15], [0.2, 0.8]])
    inst = entrywise_instantiation(4, 2, [MarkovChainModel(chain, 4)])
    query = ScalarQuery(lambda x: float(np.mean(x)), 0.25)  # lambda: unpicklable
    data = np.zeros(4, dtype=int)
    serial = WassersteinMechanism(inst, 1.0).calibrate(query, data)
    calibrator = _pooled(executor_factory=_forbidden_factory)
    parallel = calibrator.calibrate(WassersteinMechanism(inst, 1.0), query, data)
    assert parallel.scale == serial.scale
    assert calibrator.serial_runs == 1


def test_sigma_sweep_matches_serial():
    family = _two_chains(2)
    epsilons = [0.5, 1.0, 2.0, 4.0]
    serial = MQMExact(family, 1.0, max_window=48).sigma_sweep([48], epsilons)
    parallel = _pooled().sigma_sweep(
        MQMExact(family, 1.0, max_window=48), [48], epsilons
    )
    assert parallel == serial

    approx_serial = MQMApprox(family, 1.0).sigma_sweep([48], epsilons)
    approx_parallel = _pooled().sigma_sweep(MQMApprox(family, 1.0), [48], epsilons)
    assert approx_parallel == approx_serial


def test_calibrate_many_matches_serial_and_warm_starts():
    family = _two_chains(2)
    query = StateFrequencyQuery(1, 36)
    data = np.zeros(36, dtype=int)
    mechanisms = [
        MQMExact(family, 0.5, max_window=36),
        MQMExact(family, 1.0, max_window=36),
        MQMApprox(family, 1.0),
    ]
    expected = [
        MQMExact(family, 0.5, max_window=36).calibrate(query, data),
        MQMExact(family, 1.0, max_window=36).calibrate(query, data),
        MQMApprox(family, 1.0).calibrate(query, data),
    ]
    results = _pooled().calibrate_many(mechanisms, query, data)
    assert [c.scale for c in results] == [c.scale for c in expected]
    # The originals were warm-started from the workers' exported state:
    # their own serial calibrate is now a lookup producing the same result.
    for mechanism, calibration in zip(mechanisms, expected):
        assert mechanism.calibrate(query, data).scale == calibration.scale
        assert mechanism._sigma_cache  # warm, not recomputed from scratch


def test_run_mechanism_suite_shards_only_warm_startable():
    from repro.analysis import run_mechanism_suite

    family = _two_chains(2)
    query = StateFrequencyQuery(1, 36)
    data = np.zeros(36, dtype=int)
    exact = MQMExact(family, 1.0, max_window=36)
    approx = MQMApprox(family, 1.0)
    baseline = EntryDPMechanism(1.0)  # no warm_start: must not be sharded
    results = run_mechanism_suite(
        [exact, approx, baseline], data, query, n_trials=5, rng=0, workers=2
    )
    assert [r.mechanism for r in results] == ["MQMExact", "MQMApprox", "EntryDP"]
    assert results[0].noise_scale == (
        MQMExact(family, 1.0, max_window=36).calibrate(query, data).scale
    )
    assert results[2].noise_scale == EntryDPMechanism(1.0).calibrate(query, data).scale
    # The shardable mechanisms came back warm from the pool.
    assert exact._sigma_cache and approx._sigma_cache


def test_engine_parallel_lands_in_shared_cache(tmp_path):
    family = _two_chains(2)
    query = StateFrequencyQuery(1, 40)
    data = np.zeros(40, dtype=int)
    path = tmp_path / "calibrations.json"
    calibrator = _pooled()
    first = PrivacyEngine(
        MQMExact(family, 1.0, max_window=40),
        cache=CalibrationCache(JSONFileCache(path)),
        parallel=calibrator,
    )
    cold = first.calibrate(query, data)
    assert calibrator.shards_executed == 2  # the miss was sharded
    assert first.cache.misses == 1

    # A second engine over the same store: warm hit, no shards executed.
    second = PrivacyEngine(
        MQMExact(family, 1.0, max_window=40),
        cache=CalibrationCache(JSONFileCache(path)),
        parallel=_pooled(executor_factory=_forbidden_factory),
    )
    warm = second.calibrate(query, data)
    assert second.cache.hits == 1
    assert warm.scale == cold.scale
    assert warm.scale == MQMExact(family, 1.0, max_window=40).calibrate(query, data).scale


def test_mechanism_calibrate_parallel_option():
    family = _two_chains(2)
    query = StateFrequencyQuery(1, 30)
    data = np.zeros(30, dtype=int)
    serial = MQMExact(family, 1.0, max_window=30).calibrate(query, data)
    parallel = MQMExact(family, 1.0, max_window=30).calibrate(
        query, data, parallel=_pooled()
    )
    assert parallel.scale == serial.scale


def test_plan_is_empty_when_warm_or_undecomposable():
    family = _two_chains(2)
    query = StateFrequencyQuery(1, 20)
    data = np.zeros(20, dtype=int)
    calibrator = ParallelCalibrator(max_workers=2)
    mechanism = MQMExact(family, 1.0, max_window=20)
    assert len(calibrator.plan(mechanism, query, data)) == 2
    mechanism.calibrate(query, data)  # warm
    assert calibrator.plan(mechanism, query, data) == []
    # Baselines have no shard decomposition: calibrate runs fully serial.
    baseline = EntryDPMechanism(1.0)
    assert calibrator.plan(baseline, query, data) == []
    assert (
        calibrator.calibrate(baseline, query, data).scale
        == EntryDPMechanism(1.0).calibrate(query, data).scale
    )


def test_as_calibrator_normalization():
    assert as_calibrator(None) is None
    assert as_calibrator(False) is None
    default = as_calibrator(True)
    assert isinstance(default, ParallelCalibrator)
    assert as_calibrator(3).max_workers == 3
    existing = ParallelCalibrator(max_workers=2)
    assert as_calibrator(existing) is existing
    with pytest.raises(ValidationError):
        as_calibrator("four")
    with pytest.raises(ValidationError):
        ParallelCalibrator(max_workers=0)


# ----------------------------------------------------------------------
# Algorithm 2 (general networks): per-node shards
# ----------------------------------------------------------------------
def _tree_network():
    from repro.distributions.bayesnet import DiscreteBayesianNetwork

    contagion = np.array([[0.85, 0.15], [0.45, 0.55]])
    net = DiscreteBayesianNetwork()
    net.add_node("source", 2, cpd=[0.7, 0.3])
    net.add_node("hhA1", 2, parents=["source"], cpd=contagion)
    net.add_node("hhA2", 2, parents=["hhA1"], cpd=contagion)
    net.add_node("hhB1", 2, parents=["source"], cpd=contagion)
    net.add_node("hhB2", 2, parents=["hhB1"], cpd=contagion)
    net.add_node("hhB3", 2, parents=["hhB2"], cpd=contagion)
    return net


def test_mqm_general_bit_identical():
    """Algorithm 2 shards per node; scales, per-node sigmas, active quilts,
    and the composition signature all match the serial run exactly."""
    from repro.core.markov_quilt import MarkovQuiltMechanism
    from repro.core.queries import CountQuery

    query = CountQuery()
    data = np.zeros(6, dtype=int)
    serial_mech = MarkovQuiltMechanism([_tree_network()], epsilon=4.0)
    serial = serial_mech.calibrate(query, data)
    factory = CountingFactory()
    parallel_mech = MarkovQuiltMechanism([_tree_network()], epsilon=4.0)
    parallel = _pooled(executor_factory=factory).calibrate(parallel_mech, query, data)
    assert factory.calls == 1
    assert parallel.scale == serial.scale
    assert parallel.details == serial.details
    assert parallel_mech._sigma_cache == serial_mech._sigma_cache
    assert parallel_mech.quilt_signature() == serial_mech.quilt_signature()
    assert parallel_mech.active_quilts() == serial_mech.active_quilts()


def test_mqm_general_plan_one_shard_per_cold_node():
    from repro.core.markov_quilt import MarkovQuiltMechanism
    from repro.core.queries import CountQuery

    mechanism = MarkovQuiltMechanism([_tree_network()], epsilon=4.0)
    calibrator = _pooled()
    plan = calibrator.plan(mechanism, CountQuery(), np.zeros(6, dtype=int))
    assert [shard.key for shard in plan] == list(mechanism.reference.nodes)
    # Warm one node: it must drop out of the next plan.
    mechanism.sigma_for_node("source")
    replanned = calibrator.plan(mechanism, CountQuery(), np.zeros(6, dtype=int))
    assert [shard.key for shard in replanned] == [
        n for n in mechanism.reference.nodes if n != "source"
    ]
    # Full calibration leaves nothing to shard.
    calibrator.calibrate(mechanism, CountQuery(), np.zeros(6, dtype=int))
    assert calibrator.plan(mechanism, CountQuery(), np.zeros(6, dtype=int)) == []


def test_mqm_general_single_worker_inline_identical():
    from repro.core.markov_quilt import MarkovQuiltMechanism
    from repro.core.queries import CountQuery

    query = CountQuery()
    data = np.zeros(6, dtype=int)
    serial = MarkovQuiltMechanism([_tree_network()], epsilon=4.0).calibrate(query, data)
    inline_mech = MarkovQuiltMechanism([_tree_network()], epsilon=4.0)
    calibrator = ParallelCalibrator(
        max_workers=1, min_parallel_cost=0.0, executor_factory=_forbidden_factory
    )
    inline = calibrator.calibrate(inline_mech, query, data)
    assert calibrator.serial_runs == 1 and calibrator.pool_runs == 0
    assert inline.scale == serial.scale


def test_mqm_general_warm_start_via_engine_cache(tmp_path):
    """A PrivacyEngine serving Algorithm 2 restores per-node quilt state
    from the shared calibration cache across mechanism instances."""
    from repro.core.markov_quilt import MarkovQuiltMechanism
    from repro.core.queries import CountQuery

    query = CountQuery()
    data = np.zeros(6, dtype=int)
    backend = JSONFileCache(tmp_path / "calibrations.json")
    first = MarkovQuiltMechanism([_tree_network()], epsilon=4.0)
    engine_a = PrivacyEngine(first, cache=CalibrationCache(backend=backend))
    scale = engine_a.calibrate(query, data).scale
    second = MarkovQuiltMechanism([_tree_network()], epsilon=4.0)
    engine_b = PrivacyEngine(second, cache=CalibrationCache(backend=backend))
    assert engine_b.calibrate(query, data).scale == scale
    # The warm start restored the full per-node search, not just the scale.
    assert second._sigma_cache.keys() == first._sigma_cache.keys()
    assert second.quilt_signature() == first.quilt_signature()
