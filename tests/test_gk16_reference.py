"""Cross-validation of the vectorized GK16 influence matrix against a
straightforward per-entry reference implementation."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.gk16 import chain_influence_matrix
from repro.distributions.markov import MarkovChain


def reference_conditional(transition, prev_state, next_state, initial):
    """P(X_t | prev, next) by direct weighting (prev/next may be None)."""
    k = transition.shape[0]
    if prev_state is not None:
        weights = transition[prev_state, :].copy()
    elif initial is not None:
        weights = initial.copy()
    else:
        weights = np.ones(k)
    if next_state is not None:
        weights = weights * transition[:, next_state]
    total = weights.sum()
    if total <= 0:
        return None
    return weights / total


def reference_influence(transition, side, others, initial):
    k = transition.shape[0]
    worst = 0.0
    for other in others:
        laws = []
        for value in range(k):
            if side == "prev":
                law = reference_conditional(transition, value, other, initial)
            else:
                law = reference_conditional(transition, other, value, initial)
            if law is not None:
                laws.append(law)
        for a, b in itertools.combinations(laws, 2):
            worst = max(worst, 0.5 * float(np.abs(a - b).sum()))
    return worst


def reference_matrix(chain, length, free_initial=False):
    transition = chain.transition
    k = chain.n_states
    initial = None if free_initial else chain.initial
    gamma = np.zeros((length, length))
    for t in range(length):
        has_prev, has_next = t > 0, t < length - 1
        if has_prev:
            others = list(range(k)) if has_next else [None]
            gamma[t, t - 1] = reference_influence(transition, "prev", others, None)
        if has_next:
            others = list(range(k)) if has_prev else [None]
            gamma[t, t + 1] = reference_influence(
                transition, "next", others, initial if t == 0 else None
            )
    return gamma


@st.composite
def random_chains(draw, k_max=4):
    k = draw(st.integers(min_value=2, max_value=k_max))
    rows = []
    for _ in range(k):
        weights = [draw(st.integers(min_value=1, max_value=9)) for _ in range(k)]
        rows.append(np.asarray(weights, dtype=float) / sum(weights))
    initial = np.asarray(
        [draw(st.integers(min_value=0, max_value=9)) for _ in range(k)], dtype=float
    )
    if initial.sum() == 0:
        initial[0] = 1.0
    return MarkovChain(initial / initial.sum(), np.vstack(rows))


class TestVectorizedMatchesReference:
    @settings(max_examples=40, deadline=None)
    @given(random_chains(), st.integers(min_value=1, max_value=7))
    def test_fixed_initial(self, chain, length):
        fast = chain_influence_matrix(chain, length)
        slow = reference_matrix(chain, length)
        np.testing.assert_allclose(fast, slow, atol=1e-10)

    @settings(max_examples=25, deadline=None)
    @given(random_chains(), st.integers(min_value=2, max_value=6))
    def test_free_initial(self, chain, length):
        fast = chain_influence_matrix(chain, length, free_initial=True)
        slow = reference_matrix(chain, length, free_initial=True)
        np.testing.assert_allclose(fast, slow, atol=1e-10)

    def test_sparse_transition_rows(self):
        """Structural zeros produce impossible conditioning events, which
        both implementations must skip rather than divide by zero."""
        chain = MarkovChain([0.5, 0.5, 0.0], [[0.0, 1.0, 0.0], [0.5, 0.0, 0.5], [0.0, 1.0, 0.0]])
        fast = chain_influence_matrix(chain, 5)
        slow = reference_matrix(chain, 5)
        np.testing.assert_allclose(fast, slow, atol=1e-10)
        assert np.all(np.isfinite(fast))

    def test_degenerate_initial(self):
        chain = MarkovChain([1.0, 0.0], [[0.9, 0.1], [0.4, 0.6]])
        fast = chain_influence_matrix(chain, 4)
        slow = reference_matrix(chain, 4)
        np.testing.assert_allclose(fast, slow, atol=1e-10)
