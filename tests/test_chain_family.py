"""Unit tests for chain families (the distribution classes Theta)."""

import numpy as np
import pytest

from repro.distributions.chain_family import FiniteChainFamily, IntervalChainFamily
from repro.distributions.markov import MarkovChain
from repro.exceptions import NotApplicableError, ValidationError


def make_chain(p0, p1, q0=0.5):
    return MarkovChain([q0, 1 - q0], [[p0, 1 - p0], [1 - p1, p1]])


class TestFiniteChainFamily:
    def test_requires_members(self):
        with pytest.raises(ValidationError):
            FiniteChainFamily([])

    def test_requires_common_state_space(self):
        three = MarkovChain(np.ones(3) / 3, np.full((3, 3), 1 / 3))
        with pytest.raises(ValidationError):
            FiniteChainFamily([make_chain(0.5, 0.5), three])

    def test_running_example_family_stats(self):
        theta1 = MarkovChain([1.0, 0.0], [[0.9, 0.1], [0.4, 0.6]])
        theta2 = MarkovChain([0.9, 0.1], [[0.8, 0.2], [0.3, 0.7]])
        family = FiniteChainFamily([theta1, theta2])
        assert family.pi_min() == pytest.approx(0.2, abs=1e-9)
        assert len(family) == 2
        assert family.n_states == 2
        assert not family.free_initial

    def test_singleton(self):
        family = FiniteChainFamily.singleton(make_chain(0.7, 0.6))
        assert len(family) == 1

    def test_eigengap_is_min_over_members(self):
        fast = make_chain(0.5, 0.5)  # lambda_2 = 0, reversible gap 2
        slow = make_chain(0.9, 0.9)  # lambda_2 = 0.8, reversible gap 0.4
        family = FiniteChainFamily([fast, slow])
        assert family.eigengap() == pytest.approx(slow.eigengap(), abs=1e-9)

    def test_require_mixing_raises_for_periodic_member(self):
        periodic = MarkovChain([0.5, 0.5], [[0.0, 1.0], [1.0, 0.0]])
        family = FiniteChainFamily([periodic])
        with pytest.raises(NotApplicableError):
            family.require_mixing()

    def test_reversible_flag(self):
        family = FiniteChainFamily([make_chain(0.7, 0.6)])
        assert family.reversible  # all two-state chains are reversible


class TestIntervalChainFamily:
    def test_default_beta(self):
        family = IntervalChainFamily(0.2)
        assert family.beta == pytest.approx(0.8)

    def test_rejects_inverted_interval(self):
        with pytest.raises(ValidationError):
            IntervalChainFamily(0.7, 0.3)

    def test_rejects_degenerate_alpha(self):
        with pytest.raises(ValidationError):
            IntervalChainFamily(0.0)

    def test_pi_min_closed_form_matches_grid(self):
        family = IntervalChainFamily(0.2, grid_step=0.05)
        grid_min = min(chain.pi_min() for chain in family.chains())
        assert family.pi_min() == pytest.approx(grid_min, abs=1e-9)

    def test_pi_min_symmetric_interval(self):
        """For beta = 1 - alpha the closed form collapses to alpha."""
        for alpha in (0.1, 0.25, 0.4):
            family = IntervalChainFamily(alpha)
            assert family.pi_min() == pytest.approx(alpha, abs=1e-12)

    def test_eigengap_closed_form_matches_grid(self):
        family = IntervalChainFamily(0.3, grid_step=0.05)
        grid_gap = min(chain.eigengap(reversible=True) for chain in family.chains())
        assert family.eigengap() == pytest.approx(grid_gap, abs=1e-9)

    def test_eigengap_symmetric_interval(self):
        """For beta = 1 - alpha the reversible gap is 4 * alpha."""
        for alpha in (0.1, 0.25, 0.4):
            assert IntervalChainFamily(alpha).eigengap() == pytest.approx(4 * alpha)

    def test_grid_includes_endpoints(self):
        family = IntervalChainFamily(0.2, 0.5, grid_step=0.07)
        grid = family.parameter_grid()
        assert grid[0] == pytest.approx(0.2)
        assert grid[-1] == pytest.approx(0.5)

    def test_grid_of_point_interval(self):
        family = IntervalChainFamily(0.3, 0.3)
        assert family.parameter_grid().size == 1

    def test_chain_count_is_grid_squared(self):
        family = IntervalChainFamily(0.3, grid_step=0.1)
        n = family.parameter_grid().size
        assert sum(1 for _ in family.chains()) == n * n

    def test_free_initial_flag(self):
        assert IntervalChainFamily(0.2).free_initial

    def test_stationary_for_closed_form(self):
        pi = IntervalChainFamily.stationary_for(0.9, 0.6)
        chain = MarkovChain(pi, IntervalChainFamily.transition_for(0.9, 0.6))
        np.testing.assert_allclose(chain.stationary(), pi, atol=1e-9)

    def test_sample_theta_within_interval(self):
        family = IntervalChainFamily(0.25)
        rng = np.random.default_rng(0)
        for _ in range(20):
            theta = family.sample_theta(rng)
            p0 = theta.transition[0, 0]
            p1 = theta.transition[1, 1]
            assert 0.25 <= p0 <= 0.75
            assert 0.25 <= p1 <= 0.75
            np.testing.assert_allclose(theta.initial.sum(), 1.0)
