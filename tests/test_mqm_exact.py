"""Unit tests for MQMExact (Algorithm 3)."""

import numpy as np
import pytest

from repro.core.mqm_chain import MQMExact, chain_max_influence, sigma_max_from_iid_tables
from repro.core.queries import RelativeFrequencyHistogram, StateFrequencyQuery
from repro.data.datasets import TimeSeriesDataset
from repro.distributions.chain_family import FiniteChainFamily, IntervalChainFamily
from repro.distributions.markov import MarkovChain
from repro.exceptions import ValidationError

THETA1 = MarkovChain([1.0, 0.0], [[0.9, 0.1], [0.4, 0.6]])
THETA2 = MarkovChain([0.9, 0.1], [[0.8, 0.2], [0.3, 0.7]])


class TestChainMaxInfluence:
    def test_trivial_is_zero(self):
        assert chain_max_influence(THETA2, 5, None, None) == 0.0

    def test_section_4_3_values(self):
        """T=3 example: influences 0, log 6, log 6, log 36 for the middle node."""
        chain = MarkovChain([0.8, 0.2], [[0.9, 0.1], [0.4, 0.6]])
        assert chain_max_influence(chain, 1, 1, None) == pytest.approx(np.log(6))
        assert chain_max_influence(chain, 1, None, 1) == pytest.approx(np.log(6))
        assert chain_max_influence(chain, 1, 1, 1) == pytest.approx(np.log(36))

    def test_two_sided_decomposes(self):
        """For a stationary chain e(a,b) <= e_left(a) + e_right(b), with
        equality when the same (x, x') attains all maxima."""
        chain = THETA2.with_stationary_initial()
        e_two = chain_max_influence(chain, 10, 3, 4)
        e_l = chain_max_influence(chain, 10, 3, None)
        e_r = chain_max_influence(chain, 10, None, 4)
        assert e_two <= e_l + e_r + 1e-10

    def test_decays_with_distance(self):
        chain = THETA2.with_stationary_initial()
        values = [chain_max_influence(chain, 20, d, d) for d in (1, 3, 6, 12)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_stationary_index_independence(self):
        chain = THETA2.with_stationary_initial()
        assert chain_max_influence(chain, 10, 2, 3) == pytest.approx(
            chain_max_influence(chain, 25, 2, 3), abs=1e-10
        )

    def test_invalid_left_endpoint(self):
        with pytest.raises(ValidationError):
            chain_max_influence(THETA2, 2, 5, None)

    def test_free_initial_dominates_fixed(self):
        """The C.4 supremum over initials upper-bounds any fixed initial."""
        for a, b in [(1, 1), (2, 3), (4, 2)]:
            fixed = chain_max_influence(THETA2, 6, a, b)
            free = chain_max_influence(THETA2, 6, a, b, free_initial=True)
            assert free >= fixed - 1e-10

    def test_degenerate_initial_support_restriction(self):
        """theta1 starts at state 0 a.s.; restricting u to the support can
        only lower the influence (Definition 4.1 vs literal Eq. 5)."""
        strict = chain_max_influence(THETA1, 7, 7, 5, restrict_support=True)
        loose = chain_max_influence(THETA1, 7, 7, 5, restrict_support=False)
        assert strict <= loose


class TestRunningExample:
    """Section 4.4 running example, T=100, epsilon=1."""

    def test_theta1_paper_sigma(self):
        mech = MQMExact(
            FiniteChainFamily([THETA1]), 1.0, max_window=100, restrict_support=False
        )
        assert mech.sigma_max(100) == pytest.approx(13.0219, abs=2e-4)

    def test_theta2_paper_sigma(self):
        mech = MQMExact(FiniteChainFamily([THETA2]), 1.0, max_window=100)
        assert mech.sigma_max(100) == pytest.approx(10.6402, abs=2e-4)

    def test_family_takes_max_over_thetas(self):
        mech = MQMExact(
            FiniteChainFamily([THETA1, THETA2]), 1.0, max_window=100, restrict_support=False
        )
        assert mech.sigma_max(100) == pytest.approx(13.0219, abs=2e-4)

    def test_paper_quilt_score_for_x8(self):
        """The active quilt {X3, X13} for X8 under theta1 scores 13.0219."""
        influence = chain_max_influence(THETA1, 7, 5, 5)
        score = (5 + 5 - 1) / (1.0 - influence)
        assert score == pytest.approx(13.0219, abs=2e-4)


class TestStationaryPath:
    def test_matches_per_node_search(self):
        """The stationary fast path must agree with brute-force per-node."""
        chain = THETA2.with_stationary_initial()
        eps = 1.0
        fast = MQMExact(FiniteChainFamily([chain]), eps, max_window=30).sigma_max(60)
        # Brute force: per-node min over all quilt kinds.
        T, window = 60, 30
        best_per_node = []
        for t in range(T):
            options = [T / eps]
            for a in range(1, min(t, window) + 1):
                e = chain_max_influence(chain, t, a, None)
                if e < eps:
                    options.append((T - 1 - t + a) / (eps - e))
                for b in range(1, min(T - 1 - t, window) + 1):
                    e2 = chain_max_influence(chain, t, a, b)
                    if e2 < eps:
                        options.append((a + b - 1) / (eps - e2))
            for b in range(1, min(T - 1 - t, window) + 1):
                e = chain_max_influence(chain, t, None, b)
                if e < eps:
                    options.append((t + b) / (eps - e))
            best_per_node.append(min(options))
        assert fast == pytest.approx(max(best_per_node), rel=1e-9)

    def test_sigma_grows_then_saturates_in_length(self):
        chain = THETA2.with_stationary_initial()
        mech = MQMExact(FiniteChainFamily([chain]), 1.0, max_window=40)
        sigmas = [mech.sigma_max(T) for T in (3, 10, 50, 200, 1000)]
        assert all(s1 <= s2 + 1e-9 for s1, s2 in zip(sigmas, sigmas[1:]))
        assert sigmas[-1] == pytest.approx(sigmas[-2], rel=1e-6)

    def test_long_chain_is_cheap(self):
        chain = THETA2.with_stationary_initial()
        mech = MQMExact(FiniteChainFamily([chain]), 1.0, max_window=40)
        sigma = mech.sigma_max(1_000_000)
        assert np.isfinite(sigma)
        assert sigma < 100


class TestMultiSegment:
    def test_sigma_uses_longest_relevant_segment(self):
        chain = THETA2.with_stationary_initial()
        mech = MQMExact(FiniteChainFamily([chain]), 1.0, max_window=30)
        assert mech.sigma_max([5, 50]) == pytest.approx(max(
            mech.sigma_max(5), mech.sigma_max(50)
        ))

    def test_noise_scale_from_dataset(self):
        chain = THETA2.with_stationary_initial()
        data = TimeSeriesDataset(
            [chain.sample(40, rng=0), chain.sample(25, rng=1)], 2
        )
        mech = MQMExact(FiniteChainFamily([chain]), 1.0, max_window=20)
        query = RelativeFrequencyHistogram(2, data.n_observations)
        scale = mech.noise_scale(query, data)
        assert scale == pytest.approx(query.lipschitz * mech.sigma_max([40, 25]))

    def test_rejects_zero_lengths(self):
        mech = MQMExact(FiniteChainFamily([THETA2]), 1.0, max_window=10)
        with pytest.raises(ValidationError):
            mech.sigma_max([0, 5])


class TestFreeInitialFamilies:
    def test_interval_family_runs(self):
        family = IntervalChainFamily(0.3, grid_step=0.2)
        mech = MQMExact(family, 1.0, max_window=50)
        sigma = mech.sigma_max(100)
        assert np.isfinite(sigma)
        assert 0 < sigma <= 100.0

    def test_narrower_family_needs_less_noise(self):
        wide = MQMExact(IntervalChainFamily(0.2, grid_step=0.1), 1.0, max_window=50)
        narrow = MQMExact(IntervalChainFamily(0.4, grid_step=0.1), 1.0, max_window=50)
        assert narrow.sigma_max(100) <= wide.sigma_max(100) + 1e-9

    def test_free_initial_dominates_any_member(self):
        family = IntervalChainFamily(0.3, grid_step=0.2)
        free_sigma = MQMExact(family, 1.0, max_window=30).sigma_max(60)
        for chain in family.chains():
            fixed_sigma = MQMExact(
                FiniteChainFamily([chain]), 1.0, max_window=30
            ).sigma_max(60)
            assert free_sigma >= fixed_sigma - 1e-9


class TestIidTableSearch:
    def test_trivial_only_when_no_candidates(self):
        sigma = sigma_max_from_iid_tables(
            10, 1.0, np.array([]), np.array([]), np.zeros((0, 0)), np.array([]), np.array([])
        )
        assert sigma == pytest.approx(10.0)

    def test_all_infinite_influence_falls_back_to_trivial(self):
        a = np.array([1, 2])
        inf = np.full((2, 2), np.inf)
        sigma = sigma_max_from_iid_tables(
            12, 1.0, a, a, inf, np.full(2, np.inf), np.full(2, np.inf)
        )
        assert sigma == pytest.approx(12.0)

    def test_zero_influence_recovers_combinatorial_minimum(self):
        """With zero influence the best two-sided quilt is (1,1): score 1/eps;
        the worst node is any interior one, so sigma = 1/eps."""
        a = np.array([1, 2, 3])
        zeros2 = np.zeros((3, 3))
        sigma = sigma_max_from_iid_tables(
            100, 2.0, a, a, zeros2, np.zeros(3), np.zeros(3)
        )
        assert sigma == pytest.approx(0.5)

    def test_length_one_chain(self):
        sigma = sigma_max_from_iid_tables(
            1, 1.0, np.array([1]), np.array([1]), np.zeros((1, 1)), np.zeros(1), np.zeros(1)
        )
        assert sigma == pytest.approx(1.0)
