"""Unit and property tests for the Rényi accountant's arithmetic.

The conformance contract (locking, payloads, pickling, signatures) is
certified in ``tests/test_accountant_conformance.py`` for both accountants;
this module proves the *arithmetic* claims specific to
:class:`~repro.core.accounting.RenyiAccountant`:

* **Never over-spends** — on randomized schedules of epsilons, batch sizes,
  and budgets, the converted total never exceeds the budget (within the
  float atol), and every refusal leaves the ledger untouched.
* **Never stops earlier than linear** — the inf entry in the order grid
  pins the converted total at or below the linear ``sum of epsilons``
  (which itself is <= ``K * max eps``), so on any schedule the Rényi stop
  index is >= the linear stop index.  Checked on randomized schedules and
  as the algebraic inequality directly.
* **Stops strictly later in the strong-composition regime** — many
  small-epsilon releases compose at ``O(sqrt(K))``; the accountant must
  actually realize the win, not just not regress.
* **Conversion identities** — a single pure release converts to exactly
  its epsilon; ``epsilon_at`` is monotone in delta; ``rdp_totals`` is
  additive; ``optimal_order`` moves from ``inf`` to finite orders as
  strong composition starts to win.

Property-test style follows ``tests/test_property_calibration.py``:
stdlib ``random`` sweeps over seeded instances, no extra dependencies.
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro.core.accounting import (
    BUDGET_ATOL,
    DEFAULT_ORDERS,
    RenyiAccountant,
    pure_rdp_curve,
)
from repro.core.composition import CompositionAccountant
from repro.exceptions import BudgetExhaustedError, PrivacyParameterError

SEEDS = range(12)


def random_schedule(rnd: random.Random) -> list[tuple[int, float]]:
    """A random (n_releases, epsilon) schedule."""
    return [
        (rnd.randint(1, 6), rnd.uniform(0.02, 1.5))
        for _ in range(rnd.randint(3, 25))
    ]


class TestPureRdpCurve:
    def test_inf_order_costs_exactly_epsilon(self):
        orders = np.array([2.0, 10.0, math.inf])
        assert pure_rdp_curve(0.7, orders)[-1] == 0.7

    def test_small_orders_take_the_quadratic_branch(self):
        eps = 0.1
        orders = np.array([1.5, 2.0, 4.0])
        np.testing.assert_allclose(
            pure_rdp_curve(eps, orders), 0.5 * orders * eps * eps
        )

    def test_curve_is_capped_at_epsilon(self):
        eps = 0.5
        orders = np.array([1.25, 2.0, 8.0, 64.0, 1e6, math.inf])
        costs = pure_rdp_curve(eps, orders)
        assert np.all(costs <= eps)
        assert np.all(costs >= 0)
        # Non-decreasing in the order (Rényi divergence is).
        assert np.all(np.diff(costs) >= -1e-15)


class TestConversionIdentities:
    def test_single_pure_release_converts_to_exactly_epsilon(self):
        """One pure release: rdp(inf) = eps with zero conversion overhead,
        and no finite order can beat it below eps (the conversion of a
        valid RDP curve of a pure mechanism is >= its epsilon at any
        delta < 1... within the grid, the min is attained at inf)."""
        for eps in (0.05, 0.3, 1.0, 2.0):
            accountant = RenyiAccountant(delta=1e-6)
            accountant.record(eps, quilt_signature=("q",))
            assert accountant.total_epsilon() == pytest.approx(eps)

    def test_empty_accountant_spends_zero(self):
        accountant = RenyiAccountant(budget=1.0)
        assert accountant.total_epsilon() == 0.0
        assert accountant.optimal_order() == math.inf

    def test_total_is_monotone_in_releases(self):
        accountant = RenyiAccountant(delta=1e-5)
        previous = 0.0
        for _ in range(200):
            accountant.record(0.1, quilt_signature=("q",))
            total = accountant.total_epsilon()
            assert total >= previous - 1e-12
            previous = total

    def test_epsilon_at_is_monotone_in_delta(self):
        accountant = RenyiAccountant(delta=1e-6)
        accountant.record_many(50, 0.2, quilt_signature=("q",))
        totals = [accountant.epsilon_at(d) for d in (1e-9, 1e-6, 1e-3, 0.1)]
        assert totals == sorted(totals, reverse=True)
        assert accountant.epsilon_at(accountant.delta) == pytest.approx(
            accountant.total_epsilon()
        )

    def test_epsilon_at_validates_delta(self):
        accountant = RenyiAccountant()
        for bad in (0.0, 1.0, -0.1, 2.0):
            with pytest.raises(PrivacyParameterError):
                accountant.epsilon_at(bad)

    def test_rdp_totals_are_additive(self):
        accountant = RenyiAccountant(delta=1e-5)
        accountant.record_many(7, 0.3, quilt_signature=("q",))
        totals = accountant.rdp_totals()
        orders = np.array(accountant.orders)
        expected = 7 * pure_rdp_curve(0.3, orders)
        np.testing.assert_allclose(
            [totals[float(a)] for a in orders], expected
        )

    def test_optimal_order_becomes_finite_under_strong_composition(self):
        accountant = RenyiAccountant(delta=1e-6)
        accountant.record(0.1, quilt_signature=("q",))
        assert accountant.optimal_order() == math.inf
        accountant.record_many(2000, 0.1, quilt_signature=("q",))
        assert math.isfinite(accountant.optimal_order())


class TestNeverOverSpend:
    def test_random_schedules_never_exceed_budget(self):
        for seed in SEEDS:
            rnd = random.Random(seed)
            budget = rnd.uniform(0.5, 10.0)
            accountant = RenyiAccountant(budget=budget, delta=1e-5)
            for n, eps in random_schedule(rnd):
                before = accountant.total_epsilon()
                try:
                    accountant.record_many(n, eps, quilt_signature=("q",))
                except BudgetExhaustedError:
                    # Refusals never move the ledger.
                    assert accountant.total_epsilon() == before
                assert accountant.total_epsilon() <= budget + BUDGET_ATOL

    def test_refusal_threshold_is_tight(self):
        """The accountant refuses exactly when the prospective conversion
        exceeds the budget: re-offering the refused batch against a budget
        equal to that conversion succeeds."""
        for seed in SEEDS:
            rnd = random.Random(1000 + seed)
            schedule = random_schedule(rnd)
            probe = RenyiAccountant(delta=1e-5)
            for n, eps in schedule:
                probe.record_many(n, eps, quilt_signature=("q",))
            exact_total = probe.total_epsilon()
            # Budget exactly the total: the full schedule fits.
            fits = RenyiAccountant(budget=exact_total, delta=1e-5)
            for n, eps in schedule:
                fits.record_many(n, eps, quilt_signature=("q",))
            assert fits.total_epsilon() == pytest.approx(exact_total)
            # A hair under: the final step is refused.
            tight = RenyiAccountant(
                budget=exact_total * (1 - 1e-9), delta=1e-5
            )
            with pytest.raises(BudgetExhaustedError):
                for n, eps in schedule:
                    tight.record_many(n, eps, quilt_signature=("q",))


class TestNeverStopsBeforeLinear:
    def test_converted_total_is_at_most_the_linear_sum(self):
        """The algebraic inequality behind the stop-index guarantee: after
        any schedule, the Rényi conversion <= sum of epsilons."""
        for seed in SEEDS:
            rnd = random.Random(2000 + seed)
            renyi = RenyiAccountant(delta=1e-5)
            linear_sum = 0.0
            for n, eps in random_schedule(rnd):
                renyi.record_many(n, eps, quilt_signature=("q",))
                linear_sum += n * eps
                assert renyi.total_epsilon() <= linear_sum + BUDGET_ATOL

    def test_stop_index_never_earlier_on_random_schedules(self):
        """Feed both accountants one release at a time from an identical
        randomized schedule: the Rényi refusal never comes first."""
        for seed in SEEDS:
            rnd = random.Random(3000 + seed)
            budget = rnd.uniform(1.0, 8.0)
            epsilons = [
                rnd.uniform(0.02, 1.2)
                for _ in range(400)
            ]
            linear = CompositionAccountant(budget=budget)
            renyi = RenyiAccountant(budget=budget, delta=1e-5)
            linear_stop = renyi_stop = None
            for index, eps in enumerate(epsilons):
                if linear_stop is None:
                    try:
                        linear.record(eps, quilt_signature=("q",))
                    except BudgetExhaustedError:
                        linear_stop = index
                if renyi_stop is None:
                    try:
                        renyi.record(eps, quilt_signature=("q",))
                    except BudgetExhaustedError:
                        renyi_stop = index
                if linear_stop is not None and renyi_stop is not None:
                    break
            assert linear_stop is not None  # 400 releases always overflow
            assert renyi_stop is None or renyi_stop >= linear_stop

    def test_strong_composition_serves_strictly_more_at_paper_scale(self):
        """At the benchmark's paper-scale point (eps=0.2, delta=1e-5,
        budget=12) the Rényi accountant must serve >= 1.5x the linear
        count — the acceptance gate, asserted here independently of the
        benchmark harness."""
        def count(accountant) -> int:
            served = 0
            while True:
                try:
                    accountant.record(0.2, quilt_signature=("q",))
                    served += 1
                except BudgetExhaustedError:
                    return served

        linear_served = count(CompositionAccountant(budget=12.0))
        renyi_served = count(RenyiAccountant(budget=12.0, delta=1e-5))
        assert linear_served == 60
        assert renyi_served >= int(1.5 * linear_served)


class TestParameterValidation:
    def test_delta_must_be_in_unit_interval(self):
        for bad in (0.0, 1.0, -1e-3, 1.5):
            with pytest.raises(PrivacyParameterError):
                RenyiAccountant(delta=bad)

    def test_orders_must_exceed_one(self):
        for bad in ([1.0, 2.0], [0.5], [-2.0, 3.0]):
            with pytest.raises(PrivacyParameterError):
                RenyiAccountant(orders=bad)

    def test_inf_is_always_in_the_grid(self):
        accountant = RenyiAccountant(orders=(2.0, 4.0))
        assert math.inf in accountant.orders
        assert accountant.orders == (2.0, 4.0, math.inf)
        # Duplicates collapse, order is sorted.
        again = RenyiAccountant(orders=(4.0, 2.0, 2.0, math.inf))
        assert again.orders == (2.0, 4.0, math.inf)

    def test_default_grid_ends_at_inf(self):
        assert DEFAULT_ORDERS[-1] == math.inf


class TestMechanismSuppliedCurves:
    def test_custom_curve_is_charged_instead_of_pure(self):
        accountant = RenyiAccountant(delta=1e-5)
        orders = np.array(accountant.orders)
        flat = 0.01

        def curve(alphas: np.ndarray) -> np.ndarray:
            return np.full_like(np.asarray(alphas, dtype=float), flat)

        accountant.record(1.0, quilt_signature=("q",), rdp_curve=curve)
        np.testing.assert_allclose(
            [accountant.rdp_totals()[float(a)] for a in orders], flat
        )
        # Converted at inf (zero overhead) the total is the flat cost, far
        # below the pure release's epsilon.
        assert accountant.total_epsilon() == pytest.approx(flat)

    def test_curve_shape_mismatch_is_refused(self):
        accountant = RenyiAccountant()
        with pytest.raises(PrivacyParameterError, match="shape"):
            accountant.record(
                1.0,
                quilt_signature=("q",),
                rdp_curve=lambda a: np.zeros(3),
            )

    @pytest.mark.parametrize("value", [-1.0, math.nan])
    def test_invalid_curve_values_are_refused(self, value):
        accountant = RenyiAccountant()
        with pytest.raises(PrivacyParameterError, match="non-negative"):
            accountant.record(
                1.0,
                quilt_signature=("q",),
                rdp_curve=lambda a: np.full(
                    np.asarray(a, dtype=float).shape, value
                ),
            )

    def test_refused_curve_never_moves_the_ledger(self):
        accountant = RenyiAccountant(budget=1.0, delta=1e-5)
        accountant.record(0.5, quilt_signature=("q",))
        before = accountant.rdp_totals()
        with pytest.raises(PrivacyParameterError):
            accountant.record(
                1.0, quilt_signature=("q",), rdp_curve=lambda a: np.zeros(2)
            )
        assert accountant.rdp_totals() == before

    def test_linear_accountant_ignores_the_curve(self):
        accountant = CompositionAccountant(budget=1.0)
        # A free curve would admit infinitely many releases; linear
        # accounting must still charge K * max eps.
        accountant.record(
            0.5,
            quilt_signature=("q",),
            rdp_curve=lambda a: np.zeros_like(np.asarray(a, dtype=float)),
        )
        assert accountant.total_epsilon() == pytest.approx(0.5)
        accountant.record(0.5, quilt_signature=("q",))
        with pytest.raises(BudgetExhaustedError):
            accountant.record(0.5, quilt_signature=("q",))


class TestPreview:
    """``preview(charges)`` prices hypothetical schedules without mutating
    the ledger — the primitive reservation admission builds on."""

    def test_matches_actual_recording_linear(self):
        for seed in SEEDS:
            rnd = random.Random(seed)
            schedule = random_schedule(rnd)
            previewer = CompositionAccountant()
            actual = CompositionAccountant()
            for n, eps in schedule:
                actual.record_many(n, eps, quilt_signature=("q",))
            assert previewer.preview(schedule) == pytest.approx(
                actual.total_epsilon()
            )
            # The previewing accountant itself never moved.
            assert previewer.total_epsilon() == 0.0
            assert len(previewer) == 0

    def test_matches_actual_recording_renyi(self):
        for seed in SEEDS:
            rnd = random.Random(seed)
            schedule = random_schedule(rnd)
            previewer = RenyiAccountant(delta=1e-5)
            actual = RenyiAccountant(delta=1e-5)
            for n, eps in schedule:
                actual.record_many(n, eps, quilt_signature=("q",))
            assert previewer.preview(schedule) == pytest.approx(
                actual.total_epsilon()
            )
            assert previewer.total_epsilon() == 0.0

    def test_previews_on_top_of_recorded_history(self):
        accountant = RenyiAccountant(delta=1e-5)
        accountant.record_many(3, 0.4, quilt_signature=("q",))
        shadow = RenyiAccountant(delta=1e-5)
        shadow.record_many(3, 0.4, quilt_signature=("q",))
        shadow.record_many(2, 0.1, quilt_signature=("q",))
        assert accountant.preview([(2, 0.1)]) == pytest.approx(
            shadow.total_epsilon()
        )
        assert len(accountant) == 3  # history untouched

    def test_empty_and_zero_charges(self):
        accountant = CompositionAccountant()
        accountant.record_many(2, 0.5, quilt_signature=("q",))
        assert accountant.preview([]) == accountant.total_epsilon()
        assert accountant.preview([(0, 0.5)]) == accountant.total_epsilon()

    def test_invalid_charges_refused(self):
        accountant = CompositionAccountant()
        with pytest.raises(PrivacyParameterError):
            accountant.preview([(1, -0.5)])
        with pytest.raises(PrivacyParameterError):
            accountant.preview([(-1, 0.5)])

    def test_preview_ignores_budget(self):
        """Preview prices, it does not refuse — admission layers decide."""
        accountant = CompositionAccountant(budget=1.0)
        assert accountant.preview([(10, 0.5)]) == pytest.approx(5.0)
