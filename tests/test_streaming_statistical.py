"""Statistical audits of the *streamed* release distribution.

Marked ``@pytest.mark.statistical`` and mirroring
``tests/test_statistical_release.py``, but driving every release through a
:class:`~repro.serving.ReleaseSession` instead of the batched path, so the
distribution-level guarantees are evidenced on the streaming code itself:

* **Noise law** — the noise a session adds is Laplace with the calibrated
  scale (one-sample Kolmogorov–Smirnov against the closed-form CDF), and it
  matches the *batched* path's noise law under independent seeds
  (two-sample KS): streaming changes the delivery, never the distribution.
* **Empirical epsilon** — the likelihood-ratio count audit of the batched
  suite, re-run on streamed outputs over neighboring datasets: the
  empirical log acceptance ratio at the midpoint half-line must respect the
  mechanism's epsilon, and must match the asymptotic ``1 / sigma``
  separation (so the audit is not vacuously passing).

All randomness is seeded; thresholds leave comfortable margins over the
seeded statistics.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.mqm_chain import MQMExact
from repro.core.queries import StateFrequencyQuery
from repro.distributions.chain_family import FiniteChainFamily
from repro.distributions.markov import MarkovChain
from repro.serving import PrivacyEngine

EPSILON = 1.0
LENGTH = 30
N_SAMPLES = 4000
BLOCK_SIZE = 512

pytestmark = pytest.mark.statistical


@pytest.fixture(scope="module")
def workload():
    chain = MarkovChain(
        [0.5, 0.5], [[0.6, 0.4], [0.4, 0.6]]
    ).with_stationary_initial()
    family = FiniteChainFamily([chain])
    query = StateFrequencyQuery(1, LENGTH)
    data = np.zeros(LENGTH, dtype=int)
    return family, query, data


def make_engine(family) -> PrivacyEngine:
    return PrivacyEngine(MQMExact(family, EPSILON, max_window=LENGTH))


def laplace_cdf(x: np.ndarray, loc: float, scale: float) -> np.ndarray:
    z = (np.asarray(x, dtype=float) - loc) / scale
    return np.where(z < 0, 0.5 * np.exp(z), 1.0 - 0.5 * np.exp(-z))


def ks_one_sample(samples: np.ndarray, cdf_values_at_sorted: np.ndarray) -> float:
    """KS statistic of ``samples`` against a continuous CDF (evaluated at
    the sorted samples)."""
    n = samples.size
    grid = np.arange(1, n + 1) / n
    return float(
        np.max(
            np.maximum(
                grid - cdf_values_at_sorted, cdf_values_at_sorted - (grid - 1.0 / n)
            )
        )
    )


def ks_two_sample(a: np.ndarray, b: np.ndarray) -> float:
    values = np.concatenate([a, b])
    values.sort(kind="mergesort")
    cdf_a = np.searchsorted(np.sort(a), values, side="right") / a.size
    cdf_b = np.searchsorted(np.sort(b), values, side="right") / b.size
    return float(np.abs(cdf_a - cdf_b).max())


def _streamed_values(engine, data, query, n: int, seed: int) -> np.ndarray:
    with engine.stream(
        data, query, rng=seed, block_size=BLOCK_SIZE, max_releases=n
    ) as session:
        return np.array([release.value for release in session])


def _streamed_noise(engine, data, query, n: int, seed: int) -> np.ndarray:
    with engine.stream(
        data, query, rng=seed, block_size=BLOCK_SIZE, max_releases=n
    ) as session:
        return np.array([r.value - r.true_value for r in session])


def test_streamed_noise_matches_calibrated_laplace_ks(workload):
    family, query, data = workload
    engine = make_engine(family)
    scale = engine.calibrate(query, data).scale
    noise = np.sort(_streamed_noise(engine, data, query, N_SAMPLES, seed=11))
    statistic = ks_one_sample(noise, laplace_cdf(noise, 0.0, scale))
    # 1.63 / sqrt(n) is the alpha = 0.01 critical value; seeds are fixed, so
    # this is a deterministic regression gate with real statistical meaning.
    assert statistic < 1.63 / math.sqrt(N_SAMPLES)


def test_streamed_noise_matches_batch_noise_law_ks(workload):
    """Two-sample KS under independent seeds: the streamed path obeys the
    same noise law as the batched path (the seeded case is bit-identical
    and tested exactly in tests/test_streaming_properties.py)."""
    family, query, data = workload
    streamed = _streamed_noise(make_engine(family), data, query, N_SAMPLES, seed=13)
    batch_engine = make_engine(family)
    batched = np.array(
        [
            r.value - r.true_value
            for r in batch_engine.release_batch([(data, query)] * N_SAMPLES, rng=17)
        ]
    )
    statistic = ks_two_sample(streamed, batched)
    # alpha = 0.01 two-sample critical value: 1.63 * sqrt(2 / n).
    assert statistic < 1.63 * math.sqrt(2.0 / N_SAMPLES)


def test_streamed_chunking_does_not_change_the_noise_law(workload):
    """A session drained in ragged chunks has the same distribution as one
    drained one-at-a-time (they are literally the same values under one
    seed — so compare across seeds to make the claim distributional)."""
    family, query, data = workload
    one_at_a_time = _streamed_noise(make_engine(family), data, query, N_SAMPLES, seed=19)
    engine = make_engine(family)
    chunked: list[float] = []
    with engine.stream(
        data, query, rng=23, block_size=97, max_releases=N_SAMPLES
    ) as session:
        while True:
            chunk = session.take(113)
            if not chunk:
                break
            chunked.extend(r.value - r.true_value for r in chunk)
    statistic = ks_two_sample(one_at_a_time, np.asarray(chunked))
    assert statistic < 1.63 * math.sqrt(2.0 / N_SAMPLES)


def _empirical_epsilon(
    values_d: np.ndarray, values_d_prime: np.ndarray, midpoint: float
) -> float:
    p = float(np.mean(values_d >= midpoint))
    q = float(np.mean(values_d_prime >= midpoint))
    assert 0.0 < p < 1.0 and 0.0 < q < 1.0
    return abs(math.log(q / p))


def test_empirical_epsilon_audit_on_streamed_outputs(workload):
    family, query, data = workload
    neighbor = data.copy()
    neighbor[LENGTH // 2] = 1  # one record changed
    engine_d = make_engine(family)
    engine_n = make_engine(family)
    values_d = _streamed_values(engine_d, data, query, N_SAMPLES, seed=23)
    values_n = _streamed_values(engine_n, neighbor, query, N_SAMPLES, seed=29)
    midpoint = (float(query(data)) + float(query(neighbor))) / 2.0

    eps_hat = _empirical_epsilon(values_d, values_n, midpoint)
    # The guarantee: the log acceptance ratio of ANY region is at most
    # epsilon.  Slack covers binomial sampling error at n = 4000 (a few
    # standard errors of ~0.016 each side).
    assert eps_hat <= EPSILON + 0.10

    # Power check: the midpoint half-line achieves (asymptotically) the true
    # separation |F(D) - F(D')| / scale = 1 / sigma, so the audit is not
    # vacuously passing because the estimator collapsed to zero.
    sigma = engine_d.calibrate(query, data).details["sigma_max"]
    assert abs(eps_hat - 1.0 / sigma) < 0.12
