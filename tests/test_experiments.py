"""Structure and shape tests for the experiment harnesses (tiny configs)."""

import numpy as np
import pytest

from repro.experiments import (
    fig4_activity,
    fig4_synthetic,
    section3_flu,
    section44_running_example,
    table3_power,
)
from repro.experiments.config import ActivityConfig, PowerConfig, SyntheticConfig

TINY_SYNTH = SyntheticConfig(
    length=60, alphas=(0.15, 0.35), epsilons=(1.0,), n_trials=40, grid_step=0.2, seed=1
)
TINY_ACTIVITY = ActivityConfig(n_trials=2, scale=0.1, seed=2)
TINY_POWER = PowerConfig(length=20_000, epsilons=(1.0, 5.0), n_trials=3, seed=3)


class TestFig4Synthetic:
    @pytest.fixture(scope="class")
    def tables(self):
        return fig4_synthetic.run(TINY_SYNTH)

    def test_one_table_per_epsilon(self, tables):
        assert set(tables) == {1.0}

    def test_rows_and_columns(self, tables):
        table = tables[1.0]
        rows = table.to_dict()
        assert set(rows) == {"GroupDP", "GK16", "MQMApprox", "MQMExact"}
        assert all(len(v) == len(TINY_SYNTH.alphas) for v in rows.values())

    def test_gk16_na_region(self, tables):
        rows = tables[1.0].to_dict()
        assert rows["GK16"][0] is None  # alpha = 0.15: strong correlation
        assert rows["GK16"][1] is not None  # alpha = 0.35: applies

    def test_mqm_errors_shrink_with_alpha(self, tables):
        rows = tables[1.0].to_dict()
        assert rows["MQMExact"][1] < rows["MQMExact"][0]
        assert rows["MQMApprox"][1] < rows["MQMApprox"][0]

    def test_cutoff_epsilon_free(self):
        cutoff = fig4_synthetic.gk16_cutoff(TINY_SYNTH)
        assert cutoff == pytest.approx(0.35)

    def test_noise_scales_contract(self):
        from repro.distributions.chain_family import IntervalChainFamily

        family = IntervalChainFamily(0.3, grid_step=0.2)
        scales = fig4_synthetic.noise_scales(family, 1.0, 60)
        assert set(scales) == {"GroupDP", "GK16", "MQMApprox", "MQMExact"}
        assert scales["GroupDP"] == pytest.approx(1.0)
        assert scales["MQMExact"] <= scales["MQMApprox"]


class TestFig4Activity:
    @pytest.fixture(scope="class")
    def tables(self):
        return fig4_activity.run(TINY_ACTIVITY)

    def test_three_cohorts(self, tables):
        assert set(tables) == {"cyclist", "older_woman", "overweight_woman"}

    def test_histogram_rows(self, tables):
        for table in tables.values():
            rows = table.to_dict()
            assert set(rows) == {"Exact", "GroupDP", "MQMApprox", "MQMExact"}
            exact = np.asarray(rows["Exact"], dtype=float)
            np.testing.assert_allclose(exact.sum(), 1.0, atol=1e-9)

    def test_gk16_is_na(self, tables):
        for table in tables.values():
            assert "N/A" in table.title


class TestTable3Power:
    @pytest.fixture(scope="class")
    def table(self):
        return table3_power.run(TINY_POWER)

    def test_shape(self, table):
        rows = table.to_dict()
        assert set(rows) == {"GroupDP", "GK16", "MQMApprox", "MQMExact"}
        assert all(len(v) == 2 for v in rows.values())

    def test_orderings(self, table):
        assert table3_power.check_orderings(table) == []

    def test_groupdp_error_matches_closed_form(self, table):
        """GroupDP on one unbroken chain: E[L1] = k * 2 / eps exactly."""
        rows = table.to_dict()
        assert rows["GroupDP"][0] == pytest.approx(51 * 2 / 1.0, rel=0.25)
        assert rows["GroupDP"][1] == pytest.approx(51 * 2 / 5.0, rel=0.25)


class TestWorkedExampleModules:
    def test_flu_table(self):
        table = section3_flu.run(n_trials=200, seed=0)
        rows = table.to_dict()
        assert rows["Wasserstein bound W (paper: 2)"][0] == pytest.approx(2.0)
        assert rows["GroupDP sensitivity (paper: 4)"][0] == pytest.approx(4.0)

    def test_running_example_tables(self):
        composition, running = section44_running_example.run()
        comp_rows = composition.to_dict()
        assert comp_rows["{X1, X3}"][2] == pytest.approx(0.1558, abs=1e-4)
        run_rows = running.to_dict()
        assert run_rows["sigma(theta1), literal Eq. (5)"][0] == pytest.approx(
            13.0219, abs=2e-4
        )
        assert run_rows["sigma(theta2)"][0] == pytest.approx(10.6402, abs=2e-4)


class TestGeneralNetworksModule:
    def test_tree_sweep_includes_beyond_cap(self):
        from repro.distributions.bayesnet import MAX_JOINT_SIZE
        from repro.experiments import general_networks

        table = general_networks.run(depths=(2, 3), epsilon=2.0, max_radius=3)
        rows = table.to_dict()
        assert set(rows) == {"2", "3"}
        # Sigma grows with the tree but stays far below the trivial-quilt
        # bound (n / eps) once non-trivial quilts are admissible.
        assert 0 < rows["2"][3] <= 7 / 2.0
        assert 0 < rows["3"][3] <= 15 / 2.0

    def test_chain_parity_beyond_cap(self):
        from repro.experiments import general_networks

        general, exact = general_networks.chain_parity(length=12, epsilon=2.0)
        assert general == pytest.approx(exact, rel=1e-9)


class TestStructuredScenariosModule:
    def test_quick_families_never_worse(self):
        from repro.experiments import structured_scenarios

        table, records = structured_scenarios.run(
            structured_scenarios.default_families(quick=True)
        )
        assert {r["family"] for r in records} == set(table.to_dict())
        for record in records:
            assert record["structured_sigma"] <= record["baseline_sigma"] + 1e-12
            assert record["structured_candidates"] >= record["baseline_candidates"]
        # The household-blocks disconnection dividend is strict at any size.
        blocks = next(r for r in records if r["family"].startswith("blocks"))
        assert blocks["noise_ratio"] > 1.0 + 1e-9

    def test_cli_registration(self):
        from repro.__main__ import EXPERIMENTS

        assert "structured_scenarios" in EXPERIMENTS
